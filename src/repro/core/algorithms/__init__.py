"""From-scratch graph algorithms used by the dissemination-graph builders.

Everything here operates on a plain *weighted adjacency mapping*
(``node -> {neighbor: weight}``) so the algorithms stay decoupled from the
:class:`~repro.core.graph.Topology` type and are easy to property-test
against reference implementations.  :func:`adjacency_from_topology` bridges
the two representations.
"""

from repro.core.algorithms.adjacency import (
    Adjacency,
    adjacency_from_topology,
    copy_adjacency,
    reverse_adjacency,
)
from repro.core.algorithms.disjoint import disjoint_paths
from repro.core.algorithms.maxflow import max_disjoint_path_count
from repro.core.algorithms.paths import (
    NoPathError,
    bellman_ford,
    shortest_path,
    single_source_distances,
)
from repro.core.algorithms.steiner import steiner_arborescence
from repro.core.algorithms.yen import k_shortest_paths

__all__ = [
    "Adjacency",
    "NoPathError",
    "adjacency_from_topology",
    "bellman_ford",
    "copy_adjacency",
    "disjoint_paths",
    "k_shortest_paths",
    "max_disjoint_path_count",
    "reverse_adjacency",
    "shortest_path",
    "single_source_distances",
    "steiner_arborescence",
]
