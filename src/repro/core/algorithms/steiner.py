"""Greedy Steiner arborescence for the targeted-redundancy builders.

The source-problem / destination-problem graphs must reach a *set* of
nodes (the neighbours ringing the problematic endpoint) cheaply from the
source side.  Optimal directed Steiner trees are NP-hard; the standard
cheapest-path-first greedy heuristic is simple, deterministic, and at most
a logarithmic factor off -- plenty for graphs of a dozen nodes, and it is
what keeps the targeted graphs' *cost* low (abstract claim C6).
"""

from __future__ import annotations

import heapq
from typing import Hashable, Iterable

from repro.core.algorithms.adjacency import Adjacency

__all__ = ["steiner_arborescence"]

Node = Hashable
_INF = float("inf")


def steiner_arborescence(
    adjacency: Adjacency, root: Node, terminals: Iterable[Node]
) -> set[tuple[Node, Node]]:
    """Directed edge set connecting ``root`` to every reachable terminal.

    Greedy: repeatedly attach the terminal whose cheapest path from any
    node already in the arborescence is cheapest overall.  Unreachable
    terminals are silently skipped (the builders handle partially
    disconnected conditions by using whatever redundancy exists).
    """
    if root not in adjacency:
        raise KeyError(f"unknown root node {root!r}")
    pending = {t for t in terminals if t != root}
    tree_nodes: set[Node] = {root}
    tree_edges: set[tuple[Node, Node]] = set()
    while pending:
        distances, predecessor = _multi_source_dijkstra(adjacency, tree_nodes)
        best_terminal = None
        best_distance = _INF
        for terminal in sorted(pending, key=repr):
            distance = distances.get(terminal, _INF)
            if distance < best_distance:
                best_distance = distance
                best_terminal = terminal
        if best_terminal is None:
            break  # remaining terminals unreachable
        node = best_terminal
        while node not in tree_nodes:
            previous = predecessor[node]
            tree_edges.add((previous, node))
            node = previous
        # Every node on the attached path joins the tree.
        node = best_terminal
        while node not in tree_nodes:
            tree_nodes.add(node)
            node = predecessor[node]
        tree_nodes.add(best_terminal)
        pending.discard(best_terminal)
    return tree_edges


def _multi_source_dijkstra(
    adjacency: Adjacency, sources: set[Node]
) -> tuple[dict[Node, float], dict[Node, Node]]:
    distances: dict[Node, float] = {node: 0.0 for node in sources}
    predecessor: dict[Node, Node] = {}
    heap: list[tuple[float, int, Node]] = []
    counter = 0
    for node in sorted(sources, key=repr):
        heapq.heappush(heap, (0.0, counter, node))
        counter += 1
    while heap:
        distance, _tie, node = heapq.heappop(heap)
        if distance > distances.get(node, _INF):
            continue
        neighbors = adjacency.get(node, {})
        for neighbor in sorted(neighbors, key=repr):
            weight = neighbors[neighbor]
            candidate = distance + weight
            if candidate < distances.get(neighbor, _INF):
                distances[neighbor] = candidate
                predecessor[neighbor] = node
                heapq.heappush(heap, (candidate, counter, neighbor))
                counter += 1
    return distances, predecessor
