"""Shortest-path primitives: Dijkstra and Bellman-Ford.

Dijkstra is the workhorse for all latency-based routing; Bellman-Ford is
needed only inside the disjoint-path transformation, whose residual graph
contains negative-weight edges.
"""

from __future__ import annotations

import heapq
from typing import Hashable, Mapping

from repro.core.algorithms.adjacency import Adjacency

__all__ = [
    "NoPathError",
    "shortest_path",
    "single_source_distances",
    "bellman_ford",
    "path_length",
]

Node = Hashable
_INF = float("inf")


class NoPathError(Exception):
    """Raised when no path exists between the requested endpoints."""

    def __init__(self, source: Node, target: Node) -> None:
        super().__init__(f"no path from {source!r} to {target!r}")
        self.source = source
        self.target = target


def single_source_distances(
    adjacency: Adjacency, source: Node
) -> dict[Node, float]:
    """Dijkstra distances from ``source`` to every reachable node.

    Weights must be non-negative (checked lazily: a negative weight raises
    ``ValueError`` when encountered).
    """
    if source not in adjacency:
        raise KeyError(f"unknown source node {source!r}")
    distances: dict[Node, float] = {source: 0.0}
    heap: list[tuple[float, int, Node]] = [(0.0, 0, source)]
    counter = 1  # tie-breaker so heterogeneous node types never compare
    while heap:
        distance, _tie, node = heapq.heappop(heap)
        if distance > distances.get(node, _INF):
            continue
        for neighbor, weight in adjacency.get(node, {}).items():
            if weight < 0:
                raise ValueError(
                    f"negative weight {weight} on edge {node!r}->{neighbor!r}"
                )
            candidate = distance + weight
            if candidate < distances.get(neighbor, _INF):
                distances[neighbor] = candidate
                heapq.heappush(heap, (candidate, counter, neighbor))
                counter += 1
    return distances


def shortest_path(
    adjacency: Adjacency, source: Node, target: Node
) -> tuple[list[Node], float]:
    """Dijkstra shortest path; returns ``(node_list, total_weight)``.

    Ties are broken deterministically by preferring lexicographically
    smaller predecessor chains (via sorted neighbor iteration), so repeated
    runs produce identical routes -- important for reproducible replays.

    Raises :class:`NoPathError` when ``target`` is unreachable.
    """
    if source not in adjacency:
        raise KeyError(f"unknown source node {source!r}")
    if target not in adjacency:
        raise KeyError(f"unknown target node {target!r}")
    distances: dict[Node, float] = {source: 0.0}
    predecessor: dict[Node, Node] = {}
    heap: list[tuple[float, int, Node]] = [(0.0, 0, source)]
    counter = 1
    while heap:
        distance, _tie, node = heapq.heappop(heap)
        if node == target:
            break
        if distance > distances.get(node, _INF):
            continue
        neighbors = adjacency.get(node, {})
        for neighbor in sorted(neighbors, key=repr):
            weight = neighbors[neighbor]
            if weight < 0:
                raise ValueError(
                    f"negative weight {weight} on edge {node!r}->{neighbor!r}"
                )
            candidate = distance + weight
            if candidate < distances.get(neighbor, _INF):
                distances[neighbor] = candidate
                predecessor[neighbor] = node
                heapq.heappush(heap, (candidate, counter, neighbor))
                counter += 1
    if target not in distances:
        raise NoPathError(source, target)
    path = [target]
    while path[-1] != source:
        path.append(predecessor[path[-1]])
    path.reverse()
    return path, distances[target]


def bellman_ford(
    adjacency: Adjacency, source: Node, target: Node
) -> tuple[list[Node], float]:
    """Bellman-Ford shortest path, tolerating negative edge weights.

    Raises :class:`NoPathError` when unreachable and ``ValueError`` on a
    negative cycle reachable from ``source`` (which would indicate a bug in
    the disjoint-path transformation -- residual graphs built from a
    shortest path never contain one).
    """
    if source not in adjacency:
        raise KeyError(f"unknown source node {source!r}")
    distances: dict[Node, float] = {source: 0.0}
    predecessor: dict[Node, Node] = {}
    nodes = list(adjacency)
    for _round in range(len(nodes) - 1):
        changed = False
        for node in nodes:
            base = distances.get(node)
            if base is None:
                continue
            for neighbor, weight in adjacency[node].items():
                candidate = base + weight
                if candidate < distances.get(neighbor, _INF) - 1e-12:
                    distances[neighbor] = candidate
                    predecessor[neighbor] = node
                    changed = True
        if not changed:
            break
    else:
        # Ran all |V|-1 rounds with changes: check for a negative cycle.
        for node in nodes:
            base = distances.get(node)
            if base is None:
                continue
            for neighbor, weight in adjacency[node].items():
                if base + weight < distances.get(neighbor, _INF) - 1e-9:
                    raise ValueError("negative cycle reachable from source")
    if target not in distances:
        raise NoPathError(source, target)
    path = [target]
    seen = {target}
    while path[-1] != source:
        previous = predecessor[path[-1]]
        if previous in seen:  # pragma: no cover - guarded by cycle check
            raise ValueError("predecessor cycle while reconstructing path")
        seen.add(previous)
        path.append(previous)
    path.reverse()
    return path, distances[target]


def path_length(adjacency: Adjacency, path: list[Node]) -> float:
    """Total weight of ``path`` under ``adjacency`` (raises on missing edge)."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        try:
            total += adjacency[u][v]
        except KeyError:
            raise KeyError(f"path uses missing edge {u!r}->{v!r}") from None
    return total
