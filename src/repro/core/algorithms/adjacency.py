"""Weighted-adjacency representation shared by the algorithm modules.

An adjacency is ``dict[node, dict[neighbor, weight]]``.  Nodes are any
hashable value: overlay node ids in normal use, synthetic ``(node, "in")``
/ ``(node, "out")`` pairs inside the node-splitting transformations.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable

__all__ = [
    "Adjacency",
    "adjacency_from_topology",
    "copy_adjacency",
    "reverse_adjacency",
    "split_nodes",
    "unsplit_path",
]

Node = Hashable
Adjacency = Dict[Node, Dict[Node, float]]


def adjacency_from_topology(
    topology,
    weight: str = "latency",
    exclude_edges: Iterable[tuple] = (),
    exclude_nodes: Iterable = (),
) -> Adjacency:
    """Build an adjacency from a :class:`~repro.core.graph.Topology`.

    ``weight`` selects the edge weight: ``"latency"`` (milliseconds),
    ``"cost"`` (messages), or ``"hops"`` (1 per edge).  ``exclude_edges`` /
    ``exclude_nodes`` drop degraded elements before routing, which is how
    the dynamic schemes avoid problematic parts of the network.
    """
    if weight not in ("latency", "cost", "hops"):
        raise ValueError(f"unknown weight kind {weight!r}")
    excluded_edges = set(exclude_edges)
    excluded_nodes = set(exclude_nodes)
    adjacency: Adjacency = {
        node: {} for node in topology.nodes if node not in excluded_nodes
    }
    for link in topology.iter_links():
        if link.edge in excluded_edges:
            continue
        if link.source in excluded_nodes or link.target in excluded_nodes:
            continue
        if weight == "latency":
            value = link.latency_ms
        elif weight == "cost":
            value = link.cost
        else:
            value = 1.0
        adjacency[link.source][link.target] = value
    return adjacency


def copy_adjacency(adjacency: Adjacency) -> Adjacency:
    """Deep-enough copy (the nested dicts are duplicated)."""
    return {node: dict(neighbors) for node, neighbors in adjacency.items()}


def reverse_adjacency(adjacency: Adjacency) -> Adjacency:
    """Reverse every edge (weights preserved)."""
    reversed_adjacency: Adjacency = {node: {} for node in adjacency}
    for node, neighbors in adjacency.items():
        for neighbor, weight in neighbors.items():
            reversed_adjacency.setdefault(neighbor, {})[node] = weight
    return reversed_adjacency


def split_nodes(adjacency: Adjacency, keep_whole: Iterable[Node]) -> Adjacency:
    """Node-splitting transformation for node-disjointness.

    Every node ``v`` not in ``keep_whole`` becomes ``(v, "in")`` and
    ``(v, "out")`` joined by a zero-weight internal edge; an original edge
    ``u -> v`` becomes ``(u, "out") -> (v, "in")``.  Nodes in ``keep_whole``
    (the flow endpoints) keep a single representation ``(v, "both")`` so
    paths may share them.
    """
    whole = set(keep_whole)

    def tail(node: Node) -> Node:
        return (node, "both") if node in whole else (node, "out")

    def head(node: Node) -> Node:
        return (node, "both") if node in whole else (node, "in")

    split: Adjacency = {}
    for node in adjacency:
        if node in whole:
            split.setdefault((node, "both"), {})
        else:
            split.setdefault((node, "in"), {})[(node, "out")] = 0.0
            split.setdefault((node, "out"), {})
    for node, neighbors in adjacency.items():
        for neighbor, weight in neighbors.items():
            split[tail(node)][head(neighbor)] = weight
    return split


def unsplit_path(path: list) -> list:
    """Collapse a path in the split graph back to original node ids."""
    collapsed = []
    for node, _role in path:
        if not collapsed or collapsed[-1] != node:
            collapsed.append(node)
    return collapsed
