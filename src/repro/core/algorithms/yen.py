"""Yen's algorithm for k shortest loopless paths.

The dynamic single-path scheme normally needs only the single best path,
but Yen's algorithm gives the routing layer (and the ablation benches)
alternatives ranked by latency -- e.g. "best path avoiding the currently
degraded links, else next-best overall".
"""

from __future__ import annotations

import heapq
from typing import Hashable

from repro.core.algorithms.adjacency import Adjacency, copy_adjacency
from repro.core.algorithms.paths import NoPathError, path_length, shortest_path

__all__ = ["k_shortest_paths"]

Node = Hashable


def k_shortest_paths(
    adjacency: Adjacency, source: Node, target: Node, k: int
) -> list[tuple[list[Node], float]]:
    """Return up to ``k`` loopless paths, shortest first.

    Each result is ``(path, total_weight)``.  Returns fewer than ``k``
    entries when the graph does not contain that many loopless paths, and
    an empty list when the target is unreachable.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    try:
        best = shortest_path(adjacency, source, target)
    except NoPathError:
        return []
    accepted: list[tuple[list[Node], float]] = [best]
    # Candidate heap entries: (weight, tie, path).  Deduplicate by tuple.
    candidates: list[tuple[float, int, list[Node]]] = []
    seen_paths: set[tuple[Node, ...]] = {tuple(best[0])}
    counter = 0

    while len(accepted) < k:
        previous_path = accepted[-1][0]
        for spur_index in range(len(previous_path) - 1):
            spur_node = previous_path[spur_index]
            root = previous_path[: spur_index + 1]
            work = copy_adjacency(adjacency)
            # Remove edges that would recreate an already-accepted path
            # sharing this root.
            for path, _weight in accepted:
                if len(path) > spur_index and path[: spur_index + 1] == root:
                    work.get(path[spur_index], {}).pop(path[spur_index + 1], None)
            # Remove root nodes (except the spur) to keep paths loopless.
            for node in root[:-1]:
                work.pop(node, None)
                for neighbors in work.values():
                    neighbors.pop(node, None)
            try:
                spur_path, _spur_weight = shortest_path(work, spur_node, target)
            except (NoPathError, KeyError):
                continue
            total_path = root[:-1] + spur_path
            key = tuple(total_path)
            if key in seen_paths:
                continue
            seen_paths.add(key)
            weight = path_length(adjacency, total_path)
            heapq.heappush(candidates, (weight, counter, total_path))
            counter += 1
        if not candidates:
            break
        weight, _tie, path = heapq.heappop(candidates)
        accepted.append((path, weight))
    return accepted
