"""Minimum-total-weight disjoint path sets (Suurballe/Bhandari family).

``disjoint_paths`` returns up to ``k`` pairwise disjoint paths whose *total*
weight is minimal among all sets of ``k`` disjoint paths -- the classic
pitfall this solves is that greedily removing the single shortest path can
destroy the only disjoint pair.  The implementation reduces to unit-capacity
min-cost flow (:mod:`repro.core.algorithms.mincostflow`), with node
splitting for node-disjointness; this is exactly the flow formulation of
Suurballe's algorithm and handles antiparallel overlay links correctly.

The paper's two-disjoint-paths schemes use node-disjoint paths: problems
cluster at *nodes* (a site's connectivity degrades as a whole), so sharing
an intermediate node would share its fate.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.algorithms.adjacency import Adjacency, split_nodes
from repro.core.algorithms.mincostflow import MinCostFlow

__all__ = ["disjoint_paths", "strip_cycles"]

Node = Hashable


def strip_cycles(path: list[Node]) -> list[Node]:
    """Remove loops from a walk, keeping the first visit to each node."""
    position: dict[Node, int] = {}
    result: list[Node] = []
    for node in path:
        if node in position:
            del result[position[node] + 1 :]
            for stale in list(position):
                if position[stale] > position[node]:
                    del position[stale]
        else:
            position[node] = len(result)
            result.append(node)
    return result


def disjoint_paths(
    adjacency: Adjacency,
    source: Node,
    target: Node,
    k: int = 2,
    node_disjoint: bool = True,
) -> list[list[Node]]:
    """Return up to ``k`` pairwise disjoint paths of minimum total weight.

    If fewer than ``k`` disjoint paths exist, returns the maximum number
    that do (possibly just one, or an empty list when the target is
    unreachable).  Paths are returned sorted by their own weight,
    shortest first.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if source not in adjacency:
        raise KeyError(f"unknown source node {source!r}")
    if target not in adjacency:
        raise KeyError(f"unknown target node {target!r}")
    if source == target:
        raise ValueError("source and target must differ")

    if node_disjoint:
        work = split_nodes(adjacency, keep_whole=(source, target))
        flow_source: Node = (source, "both")
        flow_target: Node = (target, "both")
    else:
        work = adjacency
        flow_source = source
        flow_target = target

    solver = MinCostFlow()
    for node in work:
        solver.add_node(node)
    for node, neighbors in work.items():
        for neighbor, weight in neighbors.items():
            solver.add_arc(node, neighbor, 1, weight)
    sent, _cost = solver.send(flow_source, flow_target, k)
    if sent == 0:
        return []
    raw_paths = solver.decompose_paths(flow_source, flow_target)

    paths: list[list[Node]] = []
    for raw in raw_paths:
        if node_disjoint:
            collapsed: list[Node] = []
            for original, _role in raw:
                if not collapsed or collapsed[-1] != original:
                    collapsed.append(original)
            paths.append(strip_cycles(collapsed))
        else:
            paths.append(strip_cycles(raw))

    def weight_of(path: Sequence[Node]) -> float:
        return sum(adjacency[u][v] for u, v in zip(path, path[1:]))

    paths.sort(key=lambda path: (weight_of(path), [repr(node) for node in path]))
    return paths
