"""Work-plan layer: decompose a replay into independent shards.

A full replay is a grid of (flow, scheme) pairs; each pair's window
accumulation is independent of every other pair, and -- because windows
are accumulated additively -- the time axis of one pair can additionally
be cut at any decision boundary.  A :class:`ShardSpec` names one such
unit of work; :func:`build_plan` produces the canonical shard list and
:func:`merge_results` reassembles shard outputs into a
:class:`~repro.simulation.results.ReplayResult`.

The merge contract is *exact* equality with the serial engine, not
tolerance-based equality:

* a full-range shard runs the very same accumulation loop as
  :func:`repro.simulation.interval.replay_flow`, so its totals are
  bitwise identical to the serial totals;
* a time shard returns its per-window records, and the merge re-runs
  ``add_window`` over all windows in chronological order -- the same
  floating-point addition sequence the serial engine performs;
* every shard steps its policy through the *whole* trace (policies carry
  history-dependent state such as hysteresis), so decision timelines and
  ``decision_changes`` are the serial values regardless of sharding; only
  the expensive probability accumulation is windowed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.graph import Topology
from repro.netmodel.conditions import ConditionTimeline
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.routing.registry import make_policy
from repro.simulation.interval import _ProbabilityCache, _replay_windows
from repro.simulation.results import (
    FlowSchemeStats,
    ReplayConfig,
    ReplayResult,
    WindowRecord,
)
from repro.simulation.timeline import (
    build_decision_timeline,
    decision_boundaries,
    observed_views_with_deltas,
)
from repro.util.validation import require

__all__ = [
    "ShardSpec",
    "ShardResult",
    "ShardContext",
    "build_plan",
    "merge_results",
    "time_cuts",
]


@dataclass(frozen=True)
class ShardSpec:
    """One independent unit of replay work.

    ``index`` / ``of`` place the shard on the pair's time axis; a pair
    that is not time-sharded has a single shard with ``of == 1`` covering
    the whole trace.
    """

    flow: FlowSpec
    scheme: str
    start_s: float
    end_s: float
    index: int
    of: int

    def __post_init__(self) -> None:
        require(self.end_s > self.start_s, "shard window must have positive length")
        require(0 <= self.index < self.of, "shard index out of range")

    @property
    def full_range(self) -> bool:
        """True when the shard covers the pair's whole trace."""
        return self.of == 1

    @property
    def label(self) -> str:
        """Human-readable shard name for telemetry and logs."""
        suffix = "" if self.full_range else f" [{self.index + 1}/{self.of}]"
        return f"{self.scheme}/{self.flow.name}{suffix}"


@dataclass
class ShardResult:
    """The outcome of one shard: accumulated totals plus window records.

    ``windows`` is ``None`` only for full-range shards whose caller did
    not ask for window collection; time shards always carry their windows
    because the merge re-accumulates them chronologically.
    """

    flow_source: str
    flow_destination: str
    scheme: str
    start_s: float
    end_s: float
    index: int
    of: int
    duration_s: float
    unavailable_s: float
    lost_s: float
    late_s: float
    message_seconds: float
    decision_changes: int
    windows: list[WindowRecord] | None

    # -- cache serialisation ---------------------------------------------------

    def to_payload(self, key: str) -> dict:
        """JSON-safe payload for the content-addressed cache."""
        windows = None
        if self.windows is not None:
            windows = [
                [
                    w.start_s,
                    w.end_s,
                    w.graph_name,
                    w.graph_edges,
                    w.on_time_probability,
                    w.lost_probability,
                    w.late_probability,
                ]
                for w in self.windows
            ]
        return {
            "key": key,
            "flow": [self.flow_source, self.flow_destination],
            "scheme": self.scheme,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "index": self.index,
            "of": self.of,
            "duration_s": self.duration_s,
            "unavailable_s": self.unavailable_s,
            "lost_s": self.lost_s,
            "late_s": self.late_s,
            "message_seconds": self.message_seconds,
            "decision_changes": self.decision_changes,
            "windows": windows,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "ShardResult":
        """Rebuild a result from its cache payload (raises on bad shape)."""
        windows = payload["windows"]
        if windows is not None:
            windows = [
                WindowRecord(
                    float(w[0]),
                    float(w[1]),
                    str(w[2]),
                    int(w[3]),
                    float(w[4]),
                    float(w[5]),
                    float(w[6]),
                )
                for w in windows
            ]
        flow = payload["flow"]
        return cls(
            flow_source=str(flow[0]),
            flow_destination=str(flow[1]),
            scheme=str(payload["scheme"]),
            start_s=float(payload["start_s"]),
            end_s=float(payload["end_s"]),
            index=int(payload["index"]),
            of=int(payload["of"]),
            duration_s=float(payload["duration_s"]),
            unavailable_s=float(payload["unavailable_s"]),
            lost_s=float(payload["lost_s"]),
            late_s=float(payload["late_s"]),
            message_seconds=float(payload["message_seconds"]),
            decision_changes=int(payload["decision_changes"]),
            windows=windows,
        )


def time_cuts(
    timeline: ConditionTimeline, detection_delay_s: float, time_shards: int
) -> list[float]:
    """Cut the trace into at most ``time_shards`` window-aligned pieces.

    Cuts fall on decision boundaries so no accumulation window straddles
    a shard edge; fewer pieces are returned when the trace has fewer
    windows than requested shards.
    """
    require(time_shards >= 1, "time_shards must be >= 1")
    if time_shards == 1:
        return [0.0, timeline.duration_s]
    boundaries = decision_boundaries(timeline, detection_delay_s)
    window_count = len(boundaries) - 1
    shards = min(time_shards, window_count)
    cuts = {boundaries[round(i * window_count / shards)] for i in range(shards + 1)}
    return sorted(cuts)


def build_plan(
    timeline: ConditionTimeline,
    flows: Sequence[FlowSpec],
    scheme_names: Sequence[str],
    config: ReplayConfig,
    time_shards: int = 1,
) -> list[ShardSpec]:
    """The canonical shard list: scheme-major, flow-minor, time-ascending.

    The ordering mirrors the serial engine's insertion order, so a merge
    over this plan produces a :class:`ReplayResult` whose scheme/flow
    iteration order is identical to ``run_replay``'s.
    """
    require(bool(flows), "need at least one flow")
    require(bool(scheme_names), "need at least one scheme")
    cuts = time_cuts(timeline, config.detection_delay_s, time_shards)
    pieces = list(zip(cuts, cuts[1:]))
    plan: list[ShardSpec] = []
    for scheme in scheme_names:
        for flow in flows:
            for index, (start, end) in enumerate(pieces):
                plan.append(
                    ShardSpec(
                        flow=flow,
                        scheme=scheme,
                        start_s=start,
                        end_s=end,
                        index=index,
                        of=len(pieces),
                    )
                )
    return plan


class ShardContext:
    """Shared per-replay state reused across every shard run in one process.

    Mirrors the reuse structure of :func:`repro.simulation.interval.run_replay`:
    the merged boundary list, per-boundary views, and the probability
    memo are computed once and shared by all shards this context runs.
    """

    def __init__(
        self,
        topology: Topology,
        timeline: ConditionTimeline,
        service: ServiceSpec,
        config: ReplayConfig,
    ) -> None:
        self.topology = topology
        self.timeline = timeline
        self.service = service
        self.config = config
        self.boundaries = decision_boundaries(timeline, config.detection_delay_s)
        self.observed_views, self.observed_deltas = observed_views_with_deltas(
            timeline, self.boundaries, config.detection_delay_s
        )
        self.actual_views, self.actual_deltas = timeline.degraded_views(
            list(self.boundaries[:-1])
        )
        self.probability_cache = _ProbabilityCache(
            service.deadline_ms,
            config.max_lossy_edges,
            hop_recovery=config.hop_recovery,
            recovery_extra_ms=config.recovery_extra_ms,
            max_recovery_lossy_edges=config.max_recovery_lossy_edges,
        )

    def run(
        self, shard: ShardSpec, tracer=None, parent_id: int | None = None
    ) -> ShardResult:
        """Execute one shard: full policy stepping, windowed accumulation.

        ``tracer`` (a :class:`repro.obs.Tracer`, or ``None`` for the
        uninstrumented hot path) records the shard's two phases --
        policy stepping and window accumulation -- as child spans of
        ``parent_id``.
        """
        policy = make_policy(shard.scheme)
        phase_start = tracer.now() if tracer is not None else 0.0
        spans = build_decision_timeline(
            self.topology,
            self.timeline,
            shard.flow,
            self.service,
            policy,
            detection_delay_s=self.config.detection_delay_s,
            boundaries=list(self.boundaries),
            observed_views=list(self.observed_views),
            observed_deltas=self.observed_deltas,
        )
        if tracer is not None:
            tracer.complete(
                "shard.policy", "exec", phase_start, tracer.now(),
                parent_id=parent_id, shard=shard.label,
            )
            phase_start = tracer.now()
        group = f"{policy.name}/{shard.flow.name}"
        stats = FlowSchemeStats(flow=shard.flow, scheme=policy.name)
        stats.decision_changes = len(spans) - 1
        _replay_windows(
            stats,
            self.probability_cache,
            self.topology,
            self.boundaries,
            spans,
            self.actual_views,
            self.actual_deltas,
            group,
            True,
            shard_range=(shard.start_s, shard.end_s),
        )
        if tracer is not None:
            tracer.complete(
                "shard.windows", "exec", phase_start, tracer.now(),
                parent_id=parent_id, shard=shard.label,
                decision_changes=stats.decision_changes,
            )
        windows: list[WindowRecord] | None = stats.windows
        if shard.full_range and not self.config.collect_windows:
            windows = None
        return ShardResult(
            flow_source=shard.flow.source,
            flow_destination=shard.flow.destination,
            scheme=policy.name,
            start_s=shard.start_s,
            end_s=shard.end_s,
            index=shard.index,
            of=shard.of,
            duration_s=stats.duration_s,
            unavailable_s=stats.unavailable_s,
            lost_s=stats.lost_s,
            late_s=stats.late_s,
            message_seconds=stats.message_seconds,
            decision_changes=stats.decision_changes,
            windows=windows,
        )


def _merge_pair(
    flow: FlowSpec,
    shards: Sequence[ShardSpec],
    results: Mapping[ShardSpec, ShardResult],
    config: ReplayConfig,
) -> FlowSchemeStats:
    """Reassemble one (flow, scheme) pair from its time shards."""
    first = results[shards[0]]
    if len(shards) == 1 and shards[0].full_range:
        stats = FlowSchemeStats(
            flow=flow,
            scheme=first.scheme,
            duration_s=first.duration_s,
            unavailable_s=first.unavailable_s,
            lost_s=first.lost_s,
            late_s=first.late_s,
            message_seconds=first.message_seconds,
        )
        stats.decision_changes = first.decision_changes
        if config.collect_windows:
            require(
                first.windows is not None,
                f"shard {shards[0].label} lacks windows for collection",
            )
            stats.windows = list(first.windows)
        return stats
    stats = FlowSchemeStats(flow=flow, scheme=first.scheme)
    stats.decision_changes = first.decision_changes
    for shard in sorted(shards, key=lambda s: s.start_s):
        result = results[shard]
        require(
            result.decision_changes == first.decision_changes,
            f"inconsistent decision timelines across shards of {shard.label}",
        )
        require(
            result.windows is not None,
            f"time shard {shard.label} is missing its window records",
        )
        for window in result.windows:
            stats.add_window(
                window.start_s,
                window.end_s,
                window.graph_name,
                window.graph_edges,
                window.on_time_probability,
                window.lost_probability,
                window.late_probability,
                collect=config.collect_windows,
            )
    return stats


def merge_results(
    service: ServiceSpec,
    config: ReplayConfig,
    plan: Sequence[ShardSpec],
    results: Mapping[ShardSpec, ShardResult],
) -> ReplayResult:
    """Deterministic merge: shard outputs -> one :class:`ReplayResult`.

    ``plan`` must be the canonical plan the shards came from; its order
    dictates the result's scheme/flow iteration order.
    """
    require(bool(plan), "empty plan")
    for shard in plan:
        require(shard in results, f"missing result for shard {shard.label}")
    merged = ReplayResult(service, config)
    groups: dict[tuple[str, str], list[ShardSpec]] = {}
    for shard in plan:
        groups.setdefault((shard.scheme, shard.flow.name), []).append(shard)
    for shards in groups.values():
        merged.add(_merge_pair(shards[0].flow, shards, results, config))
    return merged
