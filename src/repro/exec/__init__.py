"""Parallel experiment execution: work plans, worker pools, result cache.

The execution engine (subsystem S17) turns a full replay into a
shard-and-merge job:

* :mod:`repro.exec.plan` -- decompose a replay into independent
  (flow, scheme[, time window]) shards and merge shard outputs back into
  a :class:`~repro.simulation.results.ReplayResult` that is *exactly*
  equal to the serial engine's;
* :mod:`repro.exec.engine` -- run shards on a process pool with retry,
  per-shard timeout, and graceful serial fallback;
* :mod:`repro.exec.cache` -- content-addressed disk cache keyed by
  (topology, timeline, flow, scheme, config, code version);
* :mod:`repro.exec.telemetry` -- per-run and per-session execution
  summaries.
"""

from repro.exec.cache import CacheInfo, ResultCache, default_cache_dir
from repro.exec.engine import run_replay_parallel
from repro.exec.plan import ShardResult, ShardSpec, build_plan, merge_results
from repro.exec.telemetry import ExecTelemetry, session_summary

__all__ = [
    "CacheInfo",
    "ExecTelemetry",
    "ResultCache",
    "ShardResult",
    "ShardSpec",
    "build_plan",
    "default_cache_dir",
    "merge_results",
    "run_replay_parallel",
    "session_summary",
]
