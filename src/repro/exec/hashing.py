"""Stable content hashing for cache keys.

A shard's cache key must change whenever anything that could change its
output changes: the topology (nodes, link latencies/costs), the compiled
condition timeline, the flow, the scheme, the service spec, the replay
config, the shard window -- and the code itself.  The code component is
a digest over every ``.py`` file of the installed ``repro`` package, so
editing any engine module invalidates prior results rather than serving
stale ones.

Hashes are built from canonical JSON (sorted keys, no whitespace).
Python's ``repr``-based float serialisation round-trips exactly, so two
runs with bitwise-identical inputs produce identical keys.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
from pathlib import Path

from repro.core.graph import Topology
from repro.netmodel.conditions import ConditionTimeline
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.simulation import kernel
from repro.simulation.results import ReplayConfig

__all__ = [
    "CODE_VERSION_ENV",
    "canonical_json",
    "stable_hash",
    "code_fingerprint",
    "context_key",
    "shard_key",
]

#: Override the computed code fingerprint (used by tests to pin keys).
CODE_VERSION_ENV = "REPRO_EXEC_CODE_VERSION"


def canonical_json(value: object) -> str:
    """Deterministic JSON encoding: sorted keys, compact separators."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def stable_hash(value: object) -> str:
    """Hex SHA-256 of the canonical JSON encoding of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of every source file of the installed ``repro`` package."""
    override = os.environ.get(CODE_VERSION_ENV)
    if override:
        return override
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def _topology_fingerprint(topology: Topology) -> dict:
    return {
        "name": topology.name,
        "nodes": {
            node: dict(topology.node_attributes(node)) for node in topology.nodes
        },
        "links": [
            [link.source, link.target, link.latency_ms, link.cost]
            for link in topology.iter_links()
        ],
    }


def _timeline_fingerprint(timeline: ConditionTimeline) -> dict:
    # The compiled segment list is canonical: timelines built from
    # different (overlapping) contribution sets but identical effective
    # conditions fingerprint equal.
    return {
        "duration_s": timeline.duration_s,
        "contributions": [
            [
                contribution.edge[0],
                contribution.edge[1],
                contribution.start_s,
                contribution.end_s,
                contribution.state.loss_rate,
                contribution.state.extra_latency_ms,
            ]
            for contribution in timeline.to_contributions()
        ],
    }


def context_key(
    topology: Topology,
    timeline: ConditionTimeline,
    service: ServiceSpec,
    config: ReplayConfig,
) -> str:
    """Key of everything shards of one replay share (computed once per run)."""
    return stable_hash(
        {
            "code": code_fingerprint(),
            # The two kernel backends agree only up to float reassociation,
            # so their shard payloads must never share disk-cache entries.
            "kernel": kernel.active_backend(),
            "topology": _topology_fingerprint(topology),
            "timeline": _timeline_fingerprint(timeline),
            "service": {
                "deadline_ms": service.deadline_ms,
                "send_interval_ms": service.send_interval_ms,
                "rtt_budget_ms": service.rtt_budget_ms,
            },
            "config": {
                "detection_delay_s": config.detection_delay_s,
                "max_lossy_edges": config.max_lossy_edges,
                "collect_windows": config.collect_windows,
                "hop_recovery": config.hop_recovery,
                "recovery_extra_ms": config.recovery_extra_ms,
                "max_recovery_lossy_edges": config.max_recovery_lossy_edges,
            },
        }
    )


def shard_key(context: str, flow: FlowSpec, scheme: str, start_s: float, end_s: float, index: int, of: int) -> str:
    """Content-addressed key of one shard within a replay context."""
    return stable_hash(
        {
            "context": context,
            "flow": [flow.source, flow.destination],
            "scheme": scheme,
            "start_s": start_s,
            "end_s": end_s,
            "index": index,
            "of": of,
        }
    )
