"""Content-addressed disk cache for shard results.

Entries live under ``<root>/<key[:2]>/<key>.json``; the root defaults to
``$REPRO_EXEC_CACHE_DIR`` or ``~/.cache/repro-dgraphs/exec``.  Every
entry wraps its payload with a SHA-256 digest; a load recomputes the
digest and discards (and deletes) the entry on any mismatch or decode
error, so a corrupted or truncated file is recomputed, never trusted.

Writes go through a temporary file plus ``os.replace`` so a crashed
writer can at worst leave a stale temp file, never a half-written entry
under a valid key.

The cache can be size-capped: pass ``max_bytes`` (or set
``$REPRO_EXEC_CACHE_MAX_BYTES``) and :meth:`ResultCache.enforce_limit`
evicts least-recently-used entries until the cache fits.  Loads bump an
entry's mtime, so recency is tracked by the filesystem itself and
survives across processes.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.exec.hashing import stable_hash
from repro.exec.plan import ShardResult

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_MAX_BYTES_ENV",
    "CacheInfo",
    "ResultCache",
    "default_cache_dir",
    "default_max_bytes",
]

CACHE_DIR_ENV = "REPRO_EXEC_CACHE_DIR"
CACHE_MAX_BYTES_ENV = "REPRO_EXEC_CACHE_MAX_BYTES"


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_EXEC_CACHE_DIR`` or the user cache directory."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-dgraphs" / "exec"


def default_max_bytes() -> int | None:
    """Size cap from ``$REPRO_EXEC_CACHE_MAX_BYTES``; ``None`` = unlimited."""
    raw = os.environ.get(CACHE_MAX_BYTES_ENV)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError as error:
        raise ValueError(
            f"{CACHE_MAX_BYTES_ENV} must be an integer byte count, got {raw!r}"
        ) from error
    if value < 0:
        raise ValueError(f"{CACHE_MAX_BYTES_ENV} must be >= 0, got {value}")
    return value or None


@dataclass(frozen=True)
class CacheInfo:
    """Snapshot of a cache directory's contents."""

    root: Path
    entries: int
    total_bytes: int


class ResultCache:
    """Load/store shard results by content hash, with corruption detection."""

    def __init__(
        self,
        root: str | Path | None = None,
        max_bytes: int | None = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.max_bytes = max_bytes if max_bytes is not None else default_max_bytes()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.evictions = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> ShardResult | None:
        """The cached result for ``key``, or ``None`` (miss or corrupt)."""
        path = self._path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            wrapper = json.loads(text)
            payload = wrapper["payload"]
            if wrapper.get("sha256") != stable_hash(payload):
                raise ValueError("payload digest mismatch")
            if payload.get("key") != key:
                raise ValueError("entry key mismatch")
            result = ShardResult.from_payload(payload)
        except (ValueError, KeyError, TypeError, IndexError):
            # Corrupted entry: drop it so the recomputed result replaces it.
            self.corrupt += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        try:
            # Bump the mtime: recency for LRU eviction lives in the
            # filesystem, so it is shared across processes for free.
            os.utime(path)
        except OSError:
            pass
        return result

    def store(self, key: str, result: ShardResult) -> None:
        """Persist ``result`` under ``key`` (atomic replace)."""
        payload = result.to_payload(key)
        wrapper = {"sha256": stable_hash(payload), "payload": payload}
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(wrapper, handle)
                # Flush user and kernel buffers before the rename: a crash
                # mid-write must leave either the old entry or the complete
                # new one, never a torn file under the final name.
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def _entry_paths(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return [
            path
            for path in self.root.glob("*/*.json")
            if not path.name.startswith(".tmp-")
        ]

    def info(self) -> CacheInfo:
        """Entry count and total size of the cache directory."""
        paths = self._entry_paths()
        total = 0
        for path in paths:
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return CacheInfo(root=self.root, entries=len(paths), total_bytes=total)

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def prune(self, max_bytes: int) -> int:
        """Evict least-recently-used entries until the cache fits.

        Entries are removed oldest-mtime-first until total size is at or
        under ``max_bytes``; returns how many were evicted.  A cap of 0
        evicts everything.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = []
        total = 0
        for path in self._entry_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= max_bytes:
            return 0
        entries.sort(key=lambda entry: (entry[0], entry[2].name))
        evicted = 0
        for _mtime, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        self.evictions += evicted
        return evicted

    def enforce_limit(self) -> int:
        """Apply the configured size cap, if any; returns evictions."""
        if self.max_bytes is None:
            return 0
        return self.prune(self.max_bytes)
