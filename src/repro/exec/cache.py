"""Content-addressed disk cache for shard results.

Entries live under ``<root>/<key[:2]>/<key>.json``; the root defaults to
``$REPRO_EXEC_CACHE_DIR`` or ``~/.cache/repro-dgraphs/exec``.  Every
entry wraps its payload with a SHA-256 digest; a load recomputes the
digest and discards (and deletes) the entry on any mismatch or decode
error, so a corrupted or truncated file is recomputed, never trusted.

Writes go through a temporary file plus ``os.replace`` so a crashed
writer can at worst leave a stale temp file, never a half-written entry
under a valid key.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.exec.hashing import stable_hash
from repro.exec.plan import ShardResult

__all__ = ["CACHE_DIR_ENV", "CacheInfo", "ResultCache", "default_cache_dir"]

CACHE_DIR_ENV = "REPRO_EXEC_CACHE_DIR"


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_EXEC_CACHE_DIR`` or the user cache directory."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-dgraphs" / "exec"


@dataclass(frozen=True)
class CacheInfo:
    """Snapshot of a cache directory's contents."""

    root: Path
    entries: int
    total_bytes: int


class ResultCache:
    """Load/store shard results by content hash, with corruption detection."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> ShardResult | None:
        """The cached result for ``key``, or ``None`` (miss or corrupt)."""
        path = self._path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            wrapper = json.loads(text)
            payload = wrapper["payload"]
            if wrapper.get("sha256") != stable_hash(payload):
                raise ValueError("payload digest mismatch")
            if payload.get("key") != key:
                raise ValueError("entry key mismatch")
            result = ShardResult.from_payload(payload)
        except (ValueError, KeyError, TypeError, IndexError):
            # Corrupted entry: drop it so the recomputed result replaces it.
            self.corrupt += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def store(self, key: str, result: ShardResult) -> None:
        """Persist ``result`` under ``key`` (atomic replace)."""
        payload = result.to_payload(key)
        wrapper = {"sha256": stable_hash(payload), "payload": payload}
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(wrapper, handle)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def _entry_paths(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return [
            path
            for path in self.root.glob("*/*.json")
            if not path.name.startswith(".tmp-")
        ]

    def info(self) -> CacheInfo:
        """Entry count and total size of the cache directory."""
        paths = self._entry_paths()
        total = 0
        for path in paths:
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return CacheInfo(root=self.root, entries=len(paths), total_bytes=total)

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
