"""Executor telemetry: what ran where, and how long it took.

Every engine invocation produces one :class:`ExecTelemetry` record and
appends it to the *current* :class:`TelemetrySession`, so entry points
that run many replays (the bench suite, seed sweeps) can print one
aggregate summary at the end -- shards run vs. served from cache,
retries, serial fallbacks, wall time, and worker utilization.

Sessions are scoped, not process-global: the default session covers the
whole process (the historical behaviour), while :func:`telemetry_session`
installs a fresh session for the current context.  The current session
lives in a :mod:`contextvars` variable, so concurrently running requests
(the ``repro serve`` daemon runs each request under its own session via
``asyncio.to_thread``, which copies the context) record into disjoint
registers -- ``session_totals`` never bleeds counts between requests.
A plain ``threading.Thread`` starts from an empty context and therefore
records into the process-wide default session unless the thread enters
``telemetry_session`` itself.
"""

from __future__ import annotations

import contextvars
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.util.tables import render_table

__all__ = [
    "ExecTelemetry",
    "TelemetrySession",
    "aggregate_telemetry",
    "current_session",
    "record",
    "reset_session",
    "session_records",
    "session_summary",
    "session_totals",
    "telemetry_session",
]


@dataclass
class ExecTelemetry:
    """Counters and timings of one execution-engine invocation."""

    label: str = "replay"
    workers: int = 0
    time_shards: int = 1
    shards_total: int = 0
    shards_run: int = 0
    shards_cached: int = 0
    shards_retried: int = 0
    shards_fallback: int = 0
    cache_corrupt: int = 0
    cache_evicted: int = 0
    prob_hits: int = 0
    prob_misses: int = 0
    prob_shared_hits: int = 0
    prob_mask_hits: int = 0
    prob_evicted: int = 0
    kernel_backend: str = "pure"
    kernel_vector_calls: int = 0
    kernel_pure_calls: int = 0
    kernel_vector_rows: int = 0
    kernel_pure_rows: int = 0
    kernel_vector_s: float = 0.0
    kernel_pure_s: float = 0.0
    wall_time_s: float = 0.0
    shard_wall_s: list[float] = field(default_factory=list)

    @property
    def prob_hit_rate(self) -> float:
        """In-memory probability-cache hit rate over degraded lookups."""
        lookups = self.prob_hits + self.prob_misses
        return self.prob_hits / lookups if lookups else 0.0

    @property
    def busy_s(self) -> float:
        """Total shard compute time (summed across workers)."""
        return sum(self.shard_wall_s)

    @property
    def utilization(self) -> float:
        """Busy time over wall time x worker slots (1.0 = fully busy)."""
        slots = max(self.workers, 1)
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.busy_s / (self.wall_time_s * slots)

    def _rows(self) -> list[list[object]]:
        executed = self.shards_run + self.shards_fallback
        max_shard = max(self.shard_wall_s) if self.shard_wall_s else 0.0
        mean_shard = self.busy_s / executed if executed else 0.0
        return [
            ["shards total", str(self.shards_total)],
            ["shards run", str(self.shards_run)],
            ["shards cached", str(self.shards_cached)],
            ["shards retried", str(self.shards_retried)],
            ["serial fallbacks", str(self.shards_fallback)],
            ["corrupt cache entries", str(self.cache_corrupt)],
            ["cache entries evicted", str(self.cache_evicted)],
            [
                "prob-cache hits/misses",
                f"{self.prob_hits}/{self.prob_misses} "
                f"({100.0 * self.prob_hit_rate:.0f} %)",
            ],
            ["prob-cache shared hits", str(self.prob_shared_hits)],
            ["prob-cache mask hits", str(self.prob_mask_hits)],
            ["prob-cache evictions", str(self.prob_evicted)],
            ["kernel backend", self.kernel_backend],
            [
                "kernel calls (vector/pure)",
                f"{self.kernel_vector_calls}/{self.kernel_pure_calls}",
            ],
            [
                "kernel rows (vector/pure)",
                f"{self.kernel_vector_rows}/{self.kernel_pure_rows}",
            ],
            [
                "kernel time (vector/pure)",
                f"{self.kernel_vector_s:.2f} / {self.kernel_pure_s:.2f} s",
            ],
            ["workers", str(self.workers) if self.workers else "serial"],
            ["wall time", f"{self.wall_time_s:.2f} s"],
            ["shard time (mean/max)", f"{mean_shard:.2f} / {max_shard:.2f} s"],
            ["worker utilization", f"{100.0 * self.utilization:.0f} %"],
        ]

    def summary_table(self) -> str:
        """The telemetry record as an aligned two-column table."""
        return render_table(
            ("execution engine", self.label),
            self._rows(),
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (embedded in run manifests and bench output)."""
        executed = self.shards_run + self.shards_fallback
        return {
            "label": self.label,
            "workers": self.workers,
            "time_shards": self.time_shards,
            "shards_total": self.shards_total,
            "shards_run": self.shards_run,
            "shards_cached": self.shards_cached,
            "shards_retried": self.shards_retried,
            "shards_fallback": self.shards_fallback,
            "cache_corrupt": self.cache_corrupt,
            "cache_evicted": self.cache_evicted,
            "prob_hits": self.prob_hits,
            "prob_misses": self.prob_misses,
            "prob_shared_hits": self.prob_shared_hits,
            "prob_mask_hits": self.prob_mask_hits,
            "prob_evicted": self.prob_evicted,
            "prob_hit_rate": self.prob_hit_rate,
            "kernel_backend": self.kernel_backend,
            "kernel_vector_calls": self.kernel_vector_calls,
            "kernel_pure_calls": self.kernel_pure_calls,
            "kernel_vector_rows": self.kernel_vector_rows,
            "kernel_pure_rows": self.kernel_pure_rows,
            "kernel_vector_s": self.kernel_vector_s,
            "kernel_pure_s": self.kernel_pure_s,
            "wall_time_s": self.wall_time_s,
            "busy_s": self.busy_s,
            "max_shard_s": max(self.shard_wall_s) if self.shard_wall_s else 0.0,
            "mean_shard_s": self.busy_s / executed if executed else 0.0,
            "utilization": self.utilization,
        }


# -- session aggregation ---------------------------------------------------------


def aggregate_telemetry(
    records: Sequence[ExecTelemetry], label: str | None = None
) -> ExecTelemetry | None:
    """Every counter summed across ``records``, or ``None`` when empty.

    Cache-health counters (``cache_corrupt``/``cache_evicted``) are
    aggregated along with the shard counters, so a corruption observed in
    any run of the session survives into the aggregate record.
    """
    if not records:
        return None
    total = ExecTelemetry(
        label=label or f"session ({len(records)} runs)",
        workers=max(t.workers for t in records),
        time_shards=max(t.time_shards for t in records),
        kernel_backend=records[-1].kernel_backend,
    )
    for telemetry in records:
        total.shards_total += telemetry.shards_total
        total.shards_run += telemetry.shards_run
        total.shards_cached += telemetry.shards_cached
        total.shards_retried += telemetry.shards_retried
        total.shards_fallback += telemetry.shards_fallback
        total.cache_corrupt += telemetry.cache_corrupt
        total.cache_evicted += telemetry.cache_evicted
        total.prob_hits += telemetry.prob_hits
        total.prob_misses += telemetry.prob_misses
        total.prob_shared_hits += telemetry.prob_shared_hits
        total.prob_mask_hits += telemetry.prob_mask_hits
        total.prob_evicted += telemetry.prob_evicted
        total.kernel_vector_calls += telemetry.kernel_vector_calls
        total.kernel_pure_calls += telemetry.kernel_pure_calls
        total.kernel_vector_rows += telemetry.kernel_vector_rows
        total.kernel_pure_rows += telemetry.kernel_pure_rows
        total.kernel_vector_s += telemetry.kernel_vector_s
        total.kernel_pure_s += telemetry.kernel_pure_s
        total.wall_time_s += telemetry.wall_time_s
        total.shard_wall_s.extend(telemetry.shard_wall_s)
    return total


class TelemetrySession:
    """One scope of engine invocations (a process, or one served request).

    Appends are lock-protected: one session may legitimately receive
    records from several threads (a request that fans out replays).
    """

    def __init__(self, label: str = "session") -> None:
        self.label = label
        self._records: list[ExecTelemetry] = []
        self._lock = threading.Lock()

    def add(self, telemetry: ExecTelemetry) -> None:
        with self._lock:
            self._records.append(telemetry)

    def records(self) -> Sequence[ExecTelemetry]:
        with self._lock:
            return tuple(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def totals(self) -> ExecTelemetry | None:
        """Aggregate record over this session's invocations, or ``None``."""
        records = self.records()
        return aggregate_telemetry(
            records, label=f"{self.label} ({len(records)} runs)"
        )


#: The process-wide default session (the historical register).
_DEFAULT_SESSION = TelemetrySession("session")

_CURRENT_SESSION: contextvars.ContextVar[TelemetrySession] = (
    contextvars.ContextVar("exec_telemetry_session", default=_DEFAULT_SESSION)
)


def current_session() -> TelemetrySession:
    """The session engine invocations record into in this context."""
    return _CURRENT_SESSION.get()


@contextmanager
def telemetry_session(label: str = "session") -> Iterator[TelemetrySession]:
    """Scope a fresh session to the current context.

    Engine invocations inside the ``with`` block (including work handed
    to ``asyncio.to_thread``, which copies the context) record into the
    yielded session instead of the enclosing one.
    """
    session = TelemetrySession(label)
    token = _CURRENT_SESSION.set(session)
    try:
        yield session
    finally:
        _CURRENT_SESSION.reset(token)


def record(telemetry: ExecTelemetry) -> None:
    """Append one engine invocation to the current session's register."""
    current_session().add(telemetry)


def session_records() -> Sequence[ExecTelemetry]:
    """All engine invocations recorded so far in the current session."""
    return current_session().records()


def reset_session() -> None:
    """Forget the current session's records (tests and long sessions)."""
    current_session().clear()


def session_totals() -> ExecTelemetry | None:
    """Every counter summed across the current session, or ``None``."""
    return current_session().totals()


def session_summary() -> str | None:
    """One aggregate table over every recorded invocation, or ``None``."""
    total = session_totals()
    return None if total is None else total.summary_table()
