"""The parallel experiment execution engine.

``run_replay_parallel`` is the shard-and-merge counterpart of
:func:`repro.simulation.interval.run_replay`: it decomposes the replay
into a work plan (:mod:`repro.exec.plan`), satisfies shards from the
content-addressed disk cache (:mod:`repro.exec.cache`) when allowed,
runs the remainder on a ``ProcessPoolExecutor``, and merges shard
outputs into a :class:`~repro.simulation.results.ReplayResult` that is
exactly equal to the serial engine's.

Failure handling is layered: a shard that raises (or whose worker dies,
or that exceeds the per-shard timeout) is retried up to ``retries``
times -- rebuilding the pool when it broke -- and finally falls back to
in-process serial execution, so a sick pool degrades to the serial
engine instead of failing the replay.

``max_workers=0`` skips the pool entirely and runs every shard
in-process with the same shared-state reuse as ``run_replay``.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only (repro.obs is optional)
    from repro.obs import Observability

from repro.core.graph import Topology
from repro.exec.cache import ResultCache
from repro.obs.trace import TraceContext, Tracer, spans_to_relative
from repro.exec.hashing import context_key, shard_key
from repro.exec.plan import (
    ShardContext,
    ShardResult,
    ShardSpec,
    build_plan,
    merge_results,
)
from repro.exec.telemetry import ExecTelemetry, record
from repro.netmodel.conditions import ConditionTimeline
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.routing.registry import STANDARD_SCHEME_NAMES
from repro.simulation import kernel
from repro.simulation.results import ReplayConfig, ReplayResult
from repro.util.validation import require

__all__ = ["run_replay_parallel"]

#: How many times a broken pool is rebuilt before abandoning it.
_MAX_POOL_REBUILDS = 2

# -- worker-process side ---------------------------------------------------------

_WORKER_CONTEXT: ShardContext | None = None
_WORKER_TRACE: TraceContext | None = None


def _worker_init(
    topology: Topology,
    timeline: ConditionTimeline,
    service: ServiceSpec,
    config: ReplayConfig,
    trace_wire: dict | None = None,
) -> None:
    """Pool initializer: build the shared replay state once per worker."""
    global _WORKER_CONTEXT, _WORKER_TRACE
    _WORKER_CONTEXT = ShardContext(topology, timeline, service, config)
    _WORKER_TRACE = (
        TraceContext.from_wire(trace_wire) if trace_wire is not None else None
    )


def _worker_run(
    shard: ShardSpec,
) -> tuple[ShardResult, float, dict[str, int], list[dict] | None]:
    """Run one shard in a pool worker.

    Returns ``(result, wall seconds, probability-cache counter delta,
    worker spans)``.  Workers are separate processes, so cache health has
    to travel home with each shard as a before/after counter difference;
    it must *not* ride inside the shard result, whose payload is
    content-addressed.  When the parent propagated a trace context
    (``_worker_init``'s ``trace_wire``), the shard runs under a local
    tracer whose spans carry the parent's trace id and are shipped back
    clock-relative (see :func:`repro.obs.trace.spans_to_relative`) for
    the parent to graft into its own trace tree.
    """
    require(_WORKER_CONTEXT is not None, "worker used before initialization")
    before = _WORKER_CONTEXT.probability_cache.counters()
    kernel_before = kernel.counters()
    started = time.perf_counter()
    worker_spans: list[dict] | None = None
    if _WORKER_TRACE is not None:
        tracer = Tracer(time.perf_counter, trace_id=_WORKER_TRACE.trace_id)
        tracer.context = {"trace_id": tracer.trace_id, "pid": os.getpid()}
        root = tracer.open("shard", "worker.shard", "exec", shard=shard.label)
        result = _WORKER_CONTEXT.run(shard, tracer=tracer, parent_id=root.span_id)
        tracer.close("shard")
        worker_spans = spans_to_relative(tracer.spans, base_s=started)
    else:
        result = _WORKER_CONTEXT.run(shard)
    wall = time.perf_counter() - started
    after = _WORKER_CONTEXT.probability_cache.counters()
    delta: dict[str, float] = {
        name: after[name] - before[name] for name in after
    }
    # Kernel counters are process-wide, so a worker's share travels home
    # the same way the cache counters do: as a before/after difference,
    # prefixed to keep the two counter families apart in one payload.
    for name, value in kernel.counters_delta(
        kernel_before, kernel.counters()
    ).items():
        delta[f"kernel_{name}"] = value
    return result, wall, delta, worker_spans


def _apply_prob_cache_delta(
    telemetry: ExecTelemetry, delta: dict[str, float]
) -> None:
    """Fold one shard's cache and kernel counter deltas into telemetry."""
    telemetry.prob_hits += int(delta.get("hits", 0))
    telemetry.prob_misses += int(delta.get("misses", 0))
    telemetry.prob_shared_hits += int(delta.get("shared_hits", 0))
    telemetry.prob_mask_hits += int(delta.get("mask_hits", 0))
    telemetry.prob_evicted += int(delta.get("evictions", 0))
    telemetry.kernel_vector_calls += int(delta.get("kernel_vector_calls", 0))
    telemetry.kernel_pure_calls += int(delta.get("kernel_pure_calls", 0))
    telemetry.kernel_vector_rows += int(delta.get("kernel_vector_rows", 0))
    telemetry.kernel_pure_rows += int(delta.get("kernel_pure_rows", 0))
    telemetry.kernel_vector_s += delta.get("kernel_vector_s", 0.0)
    telemetry.kernel_pure_s += delta.get("kernel_pure_s", 0.0)


def _default_executor_factory(
    max_workers: int, initializer: Callable, initargs: tuple
) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(
        max_workers=max_workers, initializer=initializer, initargs=initargs
    )


# -- engine ----------------------------------------------------------------------


def _run_pooled(
    pending: list[ShardSpec],
    results: dict[ShardSpec, ShardResult],
    telemetry: ExecTelemetry,
    run_locally: Callable[[ShardSpec], ShardResult],
    executor_factory: Callable,
    max_workers: int,
    initargs: tuple,
    shard_timeout_s: float | None,
    retries: int,
    obs: "Observability | None" = None,
    parent_span_id: int | None = None,
) -> None:
    """Run ``pending`` on a worker pool; fall back serially on failure."""
    attempts = {shard: 0 for shard in pending}
    queue = list(pending)
    fallback: list[ShardSpec] = []
    executor = None
    rebuilds = 0

    def give_up(shard: ShardSpec) -> None:
        if attempts[shard] <= retries:
            telemetry.shards_retried += 1
            next_queue.append(shard)
        else:
            fallback.append(shard)

    try:
        while queue:
            if executor is None:
                try:
                    executor = executor_factory(
                        min(max_workers, len(queue)), _worker_init, initargs
                    )
                except Exception:
                    fallback.extend(queue)
                    queue = []
                    break
            futures = [(shard, executor.submit(_worker_run, shard)) for shard in queue]
            next_queue: list[ShardSpec] = []
            broken = False
            for shard, future in futures:
                if broken:
                    # The pool died under us; later futures of this batch
                    # are unreliable.  Requeue without charging an attempt.
                    next_queue.append(shard)
                    continue
                try:
                    shard_result, shard_wall, cache_delta, worker_spans = (
                        future.result(timeout=shard_timeout_s)
                    )
                except (BrokenExecutor, concurrent.futures.TimeoutError):
                    # A dead worker or a hung shard poisons the whole pool:
                    # tear it down and rebuild before retrying.
                    broken = True
                    attempts[shard] += 1
                    give_up(shard)
                except Exception:
                    attempts[shard] += 1
                    give_up(shard)
                else:
                    results[shard] = shard_result
                    telemetry.shards_run += 1
                    telemetry.shard_wall_s.append(shard_wall)
                    _apply_prob_cache_delta(telemetry, cache_delta)
                    if obs is not None:
                        # Workers are separate processes; the span is
                        # reconstructed parent-side from the returned wall
                        # time, ending at the moment the result arrived.
                        end = obs.tracer.now()
                        shard_span = obs.tracer.complete(
                            "shard", "exec", end - shard_wall, end,
                            parent_id=parent_span_id,
                            shard=shard.label, mode="pool",
                        )
                        if worker_spans:
                            # Worker times are offsets from its shard
                            # start; re-base them onto this clock so the
                            # worker tree nests inside the shard span.
                            obs.tracer.graft(
                                worker_spans,
                                base_s=end - shard_wall,
                                parent_id=shard_span.span_id,
                            )
            if broken:
                executor.shutdown(wait=False, cancel_futures=True)
                executor = None
                rebuilds += 1
                if rebuilds > _MAX_POOL_REBUILDS:
                    fallback.extend(next_queue)
                    next_queue = []
            queue = next_queue
    finally:
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
    for shard in fallback:
        results[shard] = run_locally(shard)
        telemetry.shards_fallback += 1


def run_replay_parallel(
    topology: Topology,
    timeline: ConditionTimeline,
    flows: Sequence[FlowSpec],
    service: ServiceSpec,
    scheme_names: Sequence[str] = STANDARD_SCHEME_NAMES,
    config: ReplayConfig = ReplayConfig(),
    *,
    max_workers: int | None = None,
    time_shards: int = 1,
    use_cache: bool = True,
    cache: ResultCache | None = None,
    cache_dir: str | None = None,
    shard_timeout_s: float | None = None,
    retries: int = 1,
    executor_factory: Callable | None = None,
    label: str = "replay",
    obs: "Observability | None" = None,
    context: ShardContext | None = None,
) -> tuple[ReplayResult, ExecTelemetry]:
    """Replay every flow under every scheme via the execution engine.

    Returns ``(result, telemetry)`` where ``result`` is exactly equal to
    ``run_replay``'s output on the same inputs.  ``max_workers=None``
    uses the machine's core count; ``0`` runs serially in-process.

    ``obs`` (an :class:`repro.obs.Observability`) records shard spans,
    cache-hit instants, ``exec.*`` counters mirroring the telemetry, and
    per-scheme ``replay.*`` counters mirroring the merged totals.

    ``context`` supplies a pre-built (warm) :class:`ShardContext` for
    in-process shard runs, so a long-lived caller (the ``repro serve``
    daemon) reuses the probability memo and mask-classification cache
    across invocations.  It MUST have been built from the same topology,
    timeline, service and config; results stay bitwise-identical because
    cache sharing is canonical-key exact.  When the context's cache is
    shared with concurrent invocations, the per-run ``prob_*`` counter
    deltas may include the other runs' activity (telemetry only -- the
    replay output is unaffected).
    """
    require(bool(flows), "need at least one flow")
    require(bool(scheme_names), "need at least one scheme")
    require(retries >= 0, "retries must be >= 0")
    if obs is not None and not obs.enabled:
        obs = None
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    started = time.perf_counter()
    root_span_id: int | None = None
    if obs is not None:
        root_span_id = obs.tracer.open(
            ("replay", label), "replay", "exec", label=label
        ).span_id
    plan = build_plan(timeline, flows, scheme_names, config, time_shards)
    telemetry = ExecTelemetry(
        label=label,
        workers=max_workers,
        time_shards=time_shards,
        shards_total=len(plan),
        kernel_backend=kernel.active_backend(),
    )

    results: dict[ShardSpec, ShardResult] = {}
    keys: dict[ShardSpec, str] = {}
    if use_cache:
        if cache is None:
            cache = ResultCache(cache_dir)
        context_digest = context_key(topology, timeline, service, config)
        corrupt_before = cache.corrupt
        for shard in plan:
            keys[shard] = shard_key(
                context_digest,
                shard.flow,
                shard.scheme,
                shard.start_s,
                shard.end_s,
                shard.index,
                shard.of,
            )
            hit = cache.load(keys[shard])
            if hit is not None:
                results[shard] = hit
                if obs is not None:
                    obs.tracer.instant(
                        "cache.hit", "exec",
                        parent_id=root_span_id, shard=shard.label,
                    )
        telemetry.shards_cached = len(results)
        telemetry.cache_corrupt = cache.corrupt - corrupt_before

    pending = [shard for shard in plan if shard not in results]
    local_context: ShardContext | None = context

    def run_locally(shard: ShardSpec) -> ShardResult:
        nonlocal local_context
        if local_context is None:
            local_context = ShardContext(topology, timeline, service, config)
        before = local_context.probability_cache.counters()
        kernel_before = kernel.counters()
        shard_started = time.perf_counter()
        span_start = obs.tracer.now() if obs is not None else 0.0
        result = local_context.run(shard)
        shard_wall = time.perf_counter() - shard_started
        telemetry.shard_wall_s.append(shard_wall)
        after = local_context.probability_cache.counters()
        delta: dict[str, float] = {
            name: after[name] - before[name] for name in after
        }
        for name, value in kernel.counters_delta(
            kernel_before, kernel.counters()
        ).items():
            delta[f"kernel_{name}"] = value
        _apply_prob_cache_delta(telemetry, delta)
        if obs is not None:
            obs.tracer.complete(
                "shard", "exec", span_start, span_start + shard_wall,
                parent_id=root_span_id, shard=shard.label, mode="serial",
            )
        return result

    if pending:
        if max_workers > 0 and len(pending) > 1:
            trace_wire = (
                obs.tracer.trace_context(root_span_id).to_wire()
                if obs is not None
                else None
            )
            _run_pooled(
                pending,
                results,
                telemetry,
                run_locally,
                executor_factory or _default_executor_factory,
                max_workers,
                (topology, timeline, service, config, trace_wire),
                shard_timeout_s,
                retries,
                obs,
                root_span_id,
            )
        else:
            for shard in pending:
                results[shard] = run_locally(shard)
                telemetry.shards_run += 1

    if use_cache and cache is not None:
        for shard in pending:
            cache.store(keys[shard], results[shard])
        # Apply the size cap once per run, after all stores: evicting
        # mid-run could throw away shards this very run still needs.
        telemetry.cache_evicted = cache.enforce_limit()

    merged = merge_results(service, config, plan, results)
    telemetry.wall_time_s = time.perf_counter() - started
    record(telemetry)
    if obs is not None:
        obs.tracer.close(
            ("replay", label),
            shards_total=telemetry.shards_total,
            shards_cached=telemetry.shards_cached,
        )
        _observe_run(obs, telemetry, merged)
    return merged, telemetry


def _observe_run(
    obs: "Observability", telemetry: ExecTelemetry, merged: ReplayResult
) -> None:
    """Mirror the run's telemetry and merged totals into the registry.

    The ``replay.*`` counters duplicate ``merged.all_totals()`` exactly
    (a test holds them to bitwise agreement), which is what lets a run
    manifest reconcile against the replay result without re-running it.
    """
    metrics = obs.metrics
    metrics.counter("exec.shards_total").inc(telemetry.shards_total)
    metrics.counter("exec.shards_run").inc(telemetry.shards_run)
    metrics.counter("exec.shards_cached").inc(telemetry.shards_cached)
    metrics.counter("exec.shards_retried").inc(telemetry.shards_retried)
    metrics.counter("exec.shards_fallback").inc(telemetry.shards_fallback)
    metrics.counter("exec.prob_cache.hits").inc(telemetry.prob_hits)
    metrics.counter("exec.prob_cache.misses").inc(telemetry.prob_misses)
    metrics.counter("exec.prob_cache.shared_hits").inc(
        telemetry.prob_shared_hits
    )
    metrics.counter("exec.prob_cache.mask_hits").inc(telemetry.prob_mask_hits)
    metrics.counter("exec.prob_cache.evicted").inc(telemetry.prob_evicted)
    metrics.counter(
        f"replay.kernel.backend.{telemetry.kernel_backend}"
    ).inc(1)
    metrics.counter("replay.kernel.vector_calls").inc(
        telemetry.kernel_vector_calls
    )
    metrics.counter("replay.kernel.pure_calls").inc(telemetry.kernel_pure_calls)
    metrics.counter("replay.kernel.vector_rows").inc(
        telemetry.kernel_vector_rows
    )
    metrics.counter("replay.kernel.pure_rows").inc(telemetry.kernel_pure_rows)
    metrics.counter("replay.kernel.vector_s").inc(telemetry.kernel_vector_s)
    metrics.counter("replay.kernel.pure_s").inc(telemetry.kernel_pure_s)
    for wall in telemetry.shard_wall_s:
        metrics.histogram("exec.shard_wall_s").observe(wall)
    for totals in merged.all_totals():
        metrics.counter(f"replay.duration_s.{totals.scheme}").inc(
            totals.duration_s
        )
        metrics.counter(f"replay.unavailable_s.{totals.scheme}").inc(
            totals.unavailable_s
        )
        metrics.counter(f"replay.lost_s.{totals.scheme}").inc(totals.lost_s)
        metrics.counter(f"replay.late_s.{totals.scheme}").inc(totals.late_s)
