"""Command-line interface: ``repro-dgraphs <subcommand>``.

Subcommands mirror the evaluation workflow:

* ``generate-trace`` -- synthesise a multi-week condition trace to a file;
* ``evaluate`` -- replay all schemes over a trace (or a fresh one) and
  print the headline performance and cost tables; ``--workers``,
  ``--time-shards`` and ``--no-cache`` control the execution engine;
* ``classify`` -- print the problem-classification distribution of a
  trace (experiment E1);
* ``graphs`` -- print every dissemination-graph family for one flow;
* ``topology`` -- generate (``generate``) or summarise (``info``) seeded
  overlay topologies from :mod:`repro.topogen`; ``generate-trace``,
  ``evaluate`` and ``chaos`` accept ``--topology-family`` /
  ``--topology-size`` / ``--topology-seed`` to run on one;
* ``chaos`` -- run the message-level overlay under a seeded fault
  schedule (crashes, partitions, blackholes, message faults, daemon
  stalls), check the run's invariants, and compare schemes;
* ``cache`` -- inspect (``info``), evict (``clear``), or size-cap
  (``prune --max-bytes``) the execution engine's content-addressed
  result cache;
* ``obs`` -- inspect a traced run's artifacts: ``summary`` (manifest),
  ``export`` (rebuild Chrome trace JSON from the span log), ``flight``
  (list flight-recorder snapshots);
* ``serve`` -- start the evaluation daemon (:mod:`repro.serve`): a
  long-lived localhost HTTP service with warm caches, admission
  control, and streaming JSONL results;
* ``client`` -- talk to a running daemon: ``evaluate`` / ``classify`` /
  ``chaos`` submit work, ``status`` and ``shutdown`` manage it, and
  ``submit --file`` sends a raw JSON request document.

``evaluate`` and ``chaos`` accept ``--trace`` to record the run with
the :mod:`repro.obs` observability layer and ``--trace-out`` to choose
where the artifacts (trace.json / spans.jsonl / manifest.json /
flight_<k>.json) land.  The global ``--log-level`` flag controls
stderr diagnostics.

Every failure caused by bad input (unknown scheme or flow names,
unreadable trace or cache paths) exits non-zero with a one-line
message -- no tracebacks.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.classify import (
    classification_distribution,
    classify_events_for_flows,
)
from repro.analysis.reporting import (
    format_classification_table,
    format_cost_table,
    format_per_flow_table,
    format_scheme_performance_table,
)
from repro.core.builders import (
    destination_problem_graph,
    robust_source_destination_graph,
    single_path_graph,
    source_problem_graph,
    time_constrained_flooding_graph,
    two_disjoint_paths_graph,
)
from repro.netmodel.scenarios import WEEK_S, Scenario, generate_events, generate_timeline
from repro.netmodel.topology import (
    ServiceSpec,
    build_reference_topology,
    reference_flows,
)
from repro.exec.cache import ResultCache
from repro.exec.engine import run_replay_parallel
from repro.netmodel.trace import load_timeline, write_trace
from repro.routing.registry import STANDARD_SCHEME_NAMES
from repro.simulation import kernel
from repro.simulation.results import ReplayConfig
from repro.util.logging import LOG_LEVELS, configure_logging, get_logger
from repro.util.validation import fail, require

__all__ = ["main"]

_LOG = get_logger("cli")


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--weeks", type=float, default=4.0, help="trace length")
    parser.add_argument("--seed", type=int, default=7, help="generator seed")
    parser.add_argument(
        "--preset",
        default="default",
        help="scenario preset (see `repro.netmodel.preset_names()`): "
        "default, calm, stormy, endpoint-heavy, middle-heavy, latency-heavy",
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record the run with the observability layer "
        "(metrics, spans, run manifest)",
    )
    parser.add_argument(
        "--trace-out",
        default="trace-out",
        help="directory for trace.json / spans.jsonl / manifest.json "
        "(default: trace-out)",
    )


def _add_kernel_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel",
        choices=("auto", "numpy", "pure"),
        help="probability-accumulation backend (default: $REPRO_KERNEL or "
        "auto, which picks numpy when importable); exported to worker "
        "processes",
    )


def _apply_kernel_choice(args: argparse.Namespace) -> None:
    """Pin the accumulation backend when ``--kernel`` was given.

    Left unset, the environment (``$REPRO_KERNEL``) keeps authority --
    the flag must not silently override an operator's pin with ``auto``.
    """
    if getattr(args, "kernel", None) is None:
        return
    try:
        kernel.set_backend(args.kernel)
    except ValueError as error:
        fail(str(error))


def _scenario(args: argparse.Namespace) -> Scenario:
    from repro.netmodel.presets import preset_scenario

    return preset_scenario(args.preset, duration_s=args.weeks * WEEK_S)


def _add_topology_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology-family",
        help="run on a generated topology instead of the 12-site reference: "
        "random-geo, waxman, isp-hier, continental (see `repro-dgraphs "
        "topology`)",
    )
    parser.add_argument(
        "--topology-size",
        type=int,
        help="node count for --topology-family (required with a family)",
    )
    parser.add_argument(
        "--topology-seed",
        type=int,
        help="generator seed for --topology-family (default: 0)",
    )


def _workload(args: argparse.Namespace):
    """Resolve the (topology, flows) workload the command runs against.

    Every CLI entry point resolves through the :mod:`repro.topogen`
    registry, so generated topologies and the reference overlay share
    one path and unknown names fail with the same one-line error.
    """
    from repro.topogen import resolve_workload

    workload = resolve_workload(
        getattr(args, "topology_family", None),
        getattr(args, "topology_size", None),
        getattr(args, "topology_seed", None),
    )
    if workload.generated is not None:
        generated = workload.generated
        print(
            f"generated topology {generated.name}: {len(generated.nodes)} "
            f"nodes, {len(generated.links)} links "
            f"(digest {generated.digest[:12]})"
        )
    return workload


def _add_scenario_family_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario-family",
        help="adversarial scenario family instead of the preset generator: "
        "srlg-outage, congestion-storm, diurnal, intermittent-edge",
    )
    parser.add_argument(
        "--scenario-seed",
        type=int,
        help="seed for --scenario-family (default: --seed)",
    )


def _compiled_family(topology, args: argparse.Namespace, duration_s: float):
    """Compile the requested scenario family (one world for chaos/replay)."""
    from repro.scenarios import compile_family

    seed = args.seed if args.scenario_seed is None else args.scenario_seed
    return compile_family(
        topology, args.scenario_family, seed=seed, duration_s=duration_s
    )


def _cmd_generate_trace(args: argparse.Namespace) -> int:
    topology = _workload(args).topology
    scenario = _scenario(args)
    events = generate_events(topology, scenario, seed=args.seed)
    write_trace(args.output, topology, scenario.duration_s, events)
    print(
        f"wrote {len(events)} events over {args.weeks:g} weeks to {args.output}"
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    import time

    _apply_kernel_choice(args)
    timings: dict[str, float] = {}
    resolve_start = time.perf_counter()
    workload = _workload(args)
    topology = workload.topology
    timings["resolve_topology_s"] = round(
        time.perf_counter() - resolve_start, 6
    )
    service = ServiceSpec(deadline_ms=args.deadline_ms)
    flows = workload.select_flows(_split_names(args.flows))
    schemes = _split_names(args.schemes)
    if schemes is not None:
        from repro.routing.registry import make_policy

        for scheme in schemes:
            make_policy(scheme)  # unknown names fail before any work
    obs = None
    if args.trace:
        from repro.obs import Observability

        obs = Observability()
    trace_start = time.perf_counter()
    if args.trace_file:
        require(
            args.scenario_family is None,
            "--scenario-family cannot be combined with --trace-file",
        )
        events, timeline = load_timeline(args.trace_file, topology)
        print(f"replaying {args.trace_file}: {len(events)} events")
    elif args.scenario_family:
        compiled = _compiled_family(topology, args, args.weeks * WEEK_S)
        events = list(compiled.events)
        timeline = compiled.timeline()
        print(
            f"compiled scenario family {compiled.family_name!r} "
            f"(seed {compiled.seed}): {len(events)} events over "
            f"{args.weeks:g} weeks"
        )
    else:
        scenario = _scenario(args)
        events, timeline = generate_timeline(topology, scenario, seed=args.seed)
        print(
            f"generated trace: {len(events)} events over {args.weeks:g} weeks "
            f"(seed {args.seed})"
        )
    timings["build_timeline_s"] = round(time.perf_counter() - trace_start, 6)
    config = ReplayConfig(detection_delay_s=args.detection_delay_s)
    profiler = None
    if args.profile:
        from repro.obs.profile import SamplingProfiler

        profiler = SamplingProfiler(
            interval_s=args.profile_interval_ms / 1000.0
        ).start()
    replay_start = time.perf_counter()
    try:
        result, telemetry = run_replay_parallel(
            topology,
            timeline,
            flows,
            service,
            scheme_names=schemes if schemes is not None else STANDARD_SCHEME_NAMES,
            config=config,
            max_workers=args.workers,
            time_shards=args.time_shards,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            label="cli evaluate",
            obs=obs,
        )
    finally:
        timings["replay_s"] = round(time.perf_counter() - replay_start, 6)
        if profiler is not None:
            profiler.stop()
    require(
        any(totals.duration_s > 0.0 for totals in result.all_totals()),
        "replay produced zero accumulation windows -- the trace is empty "
        "or degenerate; nothing to evaluate",
    )
    print()
    print(format_scheme_performance_table(result))
    if "static-two-disjoint" in result.schemes:
        # The cost table is an overhead comparison against the standard
        # baseline; with a --schemes subset that omits it there is nothing
        # to normalise against.
        print()
        print(format_cost_table(result))
    print()
    print(telemetry.summary_table())
    print(
        "timings: "
        + " ".join(f"{name}={value:.3f}s" for name, value in timings.items())
        + f" kernel={kernel.active_backend()}"
    )
    if args.per_flow:
        print()
        print(format_per_flow_table(result))
    if args.export_dir:
        from pathlib import Path

        from repro.analysis.export import (
            export_per_flow_coverage,
            export_scheme_performance,
        )

        directory = Path(args.export_dir)
        directory.mkdir(parents=True, exist_ok=True)
        export_scheme_performance(result, directory / "scheme_performance.csv")
        export_per_flow_coverage(result, directory / "per_flow_coverage.csv")
        print(f"\nwrote CSVs to {directory}/")
    if profiler is not None:
        print()
        print(profiler.format_top_table())
    if obs is not None:
        from pathlib import Path

        from repro.obs import RunManifest, topology_fingerprint

        extra: dict = {"timings": timings, "kernel": kernel.describe()}
        if workload.generated is not None:
            extra["generated_topology"] = {
                "name": workload.generated.name,
                "digest": workload.generated.digest,
            }
        if profiler is not None:
            extra["profile"] = profiler.report()
        manifest = RunManifest(
            label="evaluate",
            seed=args.seed,
            schemes=tuple(result.schemes),
            flows=tuple(flow.name for flow in flows),
            topology=topology_fingerprint(topology),
            duration_s=timeline.duration_s,
            exec=telemetry.to_dict(),
            extra=extra,
        )
        paths = obs.export(args.trace_out, manifest)
        if profiler is not None:
            paths["profile"] = profiler.write_collapsed(
                Path(args.trace_out) / "profile.collapsed"
            )
        names = ", ".join(sorted(path.name for path in paths.values()))
        print(f"\nwrote trace artifacts to {args.trace_out}/: {names}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    topology = build_reference_topology()
    flows = reference_flows()
    service = ServiceSpec()
    if args.trace_file:
        from repro.netmodel.trace import read_trace

        _duration, events = read_trace(args.trace_file, topology)
    else:
        events = generate_events(topology, _scenario(args), seed=args.seed)
    problems = classify_events_for_flows(
        topology, flows, events, service.deadline_ms
    )
    from collections import Counter

    counts = Counter(problem.category for problem in problems)
    distribution = classification_distribution(problems)
    print(format_classification_table(distribution, counts))
    return 0


def _cmd_graphs(args: argparse.Namespace) -> int:
    topology = build_reference_topology()
    source, destination = args.source, args.destination
    deadline = args.deadline_ms
    families = [
        ("single path", single_path_graph(topology, source, destination)),
        ("two disjoint paths", two_disjoint_paths_graph(topology, source, destination)),
        (
            "time-constrained flooding",
            time_constrained_flooding_graph(topology, source, destination, deadline),
        ),
        (
            "source-problem graph",
            source_problem_graph(topology, source, destination, deadline_ms=deadline),
        ),
        (
            "destination-problem graph",
            destination_problem_graph(
                topology, source, destination, deadline_ms=deadline
            ),
        ),
        (
            "robust source+destination",
            robust_source_destination_graph(
                topology, source, destination, deadline_ms=deadline
            ),
        ),
    ]
    for label, graph in families:
        print(f"{label} ({graph.num_edges} edges / messages per packet):")
        for edge in graph.sorted_edges():
            print(f"  {edge[0]} -> {edge[1]}")
        print()
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "info":
        info = cache.info()
        print(f"cache root: {info.root}")
        print(f"entries:    {info.entries}")
        print(f"size:       {info.total_bytes / 1024:.1f} KiB")
    elif args.action == "prune":
        if args.max_bytes is None:
            raise ValueError("cache prune requires --max-bytes")
        evicted = cache.prune(args.max_bytes)
        info = cache.info()
        print(
            f"evicted {evicted} entries from {cache.root}; "
            f"{info.entries} remain ({info.total_bytes} bytes)"
        )
    else:  # clear
        removed = cache.clear()
        print(f"removed {removed} cache entries from {cache.root}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs import read_manifest, read_spans_jsonl, write_chrome_trace
    from repro.util.tables import render_table

    if args.action == "watch":
        from repro.obs.watch import watch
        from repro.serve.client import ServeClient

        client = ServeClient(host=args.host, port=args.port, timeout_s=30.0)
        try:
            return watch(client.metrics, interval_s=args.interval,
                         iterations=args.iterations)
        except KeyboardInterrupt:
            return 0
    require(args.dir is not None, f"obs {args.action} requires a directory")
    directory = Path(args.dir)
    if args.action == "summary":
        manifest = read_manifest(directory / "manifest.json")
        duration = (
            f"{manifest.duration_s:g} s"
            if manifest.duration_s is not None
            else None
        )
        rows = [
            ["label", manifest.label],
            ["seed", manifest.seed],
            ["schemes", ", ".join(manifest.schemes) or None],
            ["flows", len(manifest.flows)],
            ["topology", manifest.topology],
            ["duration", duration],
            ["spans recorded", manifest.spans.get("recorded", 0)],
            ["spans dropped", manifest.spans.get("dropped", 0)],
            ["flight triggers", manifest.flight.get("triggers", 0)],
            ["metrics", len(manifest.metrics)],
        ]
        print(render_table(("run manifest", str(directory)), rows))
        if args.prefix is not None:
            print()
            matching = sorted(
                name
                for name in manifest.metrics
                if name.startswith(args.prefix)
            )
            if not matching:
                print(f"no metrics match prefix {args.prefix!r}")
            for name in matching:
                summary = dict(manifest.metrics[name])
                kind = summary.pop("type", "?")
                fields = "  ".join(
                    f"{key}={value:g}"
                    if isinstance(value, float)
                    else f"{key}={value}"
                    for key, value in summary.items()
                )
                print(f"{name} [{kind}] {fields}")
    elif args.action == "export":
        spans = read_spans_jsonl(directory / "spans.jsonl")
        out = Path(args.out) if args.out else directory / "trace.json"
        write_chrome_trace(spans, out)
        print(f"wrote {len(spans)} span(s) as Chrome trace events to {out}")
    else:  # flight
        snapshots = sorted(directory.glob("flight_*.json"))
        if not snapshots:
            print(f"no flight snapshots in {directory}/")
        for path in snapshots:
            payload = json.loads(path.read_text())
            print(
                f"{path.name}: t={payload.get('at_s', 0.0):.3f}s, "
                f"{len(payload.get('spans', []))} span(s) -- "
                f"{payload.get('reason')}"
            )
    return 0


def _current_branch() -> str:
    """Best-effort branch name: CI env var, then git, then ``main``."""
    import os
    import subprocess

    for variable in ("GITHUB_HEAD_REF", "GITHUB_REF_NAME"):
        name = os.environ.get(variable)
        if name:
            return name
    try:
        name = subprocess.run(
            ["git", "rev-parse", "--abbrev-ref", "HEAD"],
            capture_output=True, text=True, timeout=5.0,
        ).stdout.strip()
        if name and name != "HEAD":
            return name
    except (OSError, subprocess.SubprocessError):
        pass
    return "main"


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.history import (
        check,
        format_finding,
        github_annotation,
        history_path,
        ingest,
        summarize,
    )

    branch = args.branch or _current_branch()
    if args.action == "ingest":
        entries = ingest(
            args.bench_out, args.history_dir, branch, commit=args.commit
        )
        target = history_path(args.history_dir, branch)
        if not entries:
            print(f"no BENCH_*.json artifacts in {args.bench_out}; "
                  f"{target} unchanged")
            return 0
        names = ", ".join(entry["experiment"] for entry in entries)
        print(f"appended {len(entries)} entr(y/ies) to {target}: {names}")
        return 0
    # check
    findings = check(
        args.history_dir,
        branch,
        window=args.window,
        rel_threshold=args.rel_threshold,
        mad_factor=args.mad_factor,
    )
    counts = summarize(findings)
    for finding in findings:
        print(format_finding(finding))
        if args.annotate:
            print(github_annotation(finding))
    print(
        f"bench history [{branch}]: {counts['regression']} regression(s), "
        f"{counts['shift']} shift(s), {counts['improvement']} improvement(s)"
    )
    if args.strict and counts["regression"]:
        return 1
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    from repro.topogen import (
        GeneratedTopology,
        family_names,
        generate_topology,
        resolve_workload,
    )
    from repro.topogen.registry import DEFAULT_FLOW_COUNT, family_info

    if args.topology_command == "generate":
        generated = generate_topology(args.family, args.size, args.seed)
        if args.out:
            generated.dump(args.out)
            print(
                f"wrote {generated.name} ({len(generated.nodes)} nodes, "
                f"{len(generated.links)} links, digest "
                f"{generated.digest[:12]}) to {args.out}"
            )
        else:
            # The artifact itself, byte-for-byte: piping to a file equals
            # --out, and repeated runs are byte-identical.
            sys.stdout.write(generated.to_json())
        return 0
    # info
    if args.path is not None:
        require(
            args.family is None and args.size is None,
            "give either an artifact path or --family/--size, not both",
        )
        generated = GeneratedTopology.load(args.path)
    else:
        require(
            args.family is not None,
            "topology info needs an artifact path or --family/--size; "
            f"families: {', '.join(family_names())}",
        )
        info = family_info(args.family)
        require(
            args.size is not None,
            f"family {args.family!r} needs an explicit --size "
            f"({info.min_size}..{info.max_size})",
        )
        generated = generate_topology(
            args.family, args.size, 0 if args.seed is None else args.seed
        )
    degrees: dict[str, int] = {node[0]: 0 for node in generated.nodes}
    for a, b, _latency in generated.links:
        degrees[a] += 1
        degrees[b] += 1
    latencies = [latency for _a, _b, latency in generated.links]
    print(f"name:    {generated.name}")
    print(
        f"family:  {generated.family}  size: {generated.size}  "
        f"seed: {generated.seed}"
    )
    print(f"digest:  {generated.digest}")
    print(f"nodes:   {len(generated.nodes)}  links: {len(generated.links)}")
    print(
        f"degree:  min {min(degrees.values())} / "
        f"avg {sum(degrees.values()) / len(degrees):.2f} / "
        f"max {max(degrees.values())}"
    )
    print(
        f"latency: {min(latencies):.2f}..{max(latencies):.2f} ms "
        f"(declared bounds {generated.param('latency_ms_min')}.."
        f"{generated.param('latency_ms_max')})"
    )
    if args.flows:
        workload = resolve_workload(
            generated.family, generated.size, generated.seed
        )
        print(f"default flows ({DEFAULT_FLOW_COUNT}):")
        for flow in workload.flows:
            print(f"  {flow.name}")
    return 0


def _chaos_flows(args: argparse.Namespace, workload):
    names = _split_names(args.flows)
    if names is None:
        # The whole flow table at once makes for a slow simulation;
        # default to a representative pair.
        return workload.select_flows(None, default=workload.flows[:2])
    return workload.select_flows(names)


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import ChaosSpec, generate_fault_schedule
    from repro.netmodel.conditions import ConditionTimeline
    from repro.overlay.harness import build_overlay
    from repro.routing.registry import make_policy

    workload = _workload(args)
    topology = workload.topology
    flows = _chaos_flows(args, workload)
    schemes = [name.strip() for name in args.schemes.split(",") if name.strip()]
    for scheme in schemes:
        make_policy(scheme)  # validate early: unknown names fail before the run
    service = ServiceSpec(
        deadline_ms=args.deadline_ms, send_interval_ms=args.send_interval_ms
    )
    protected = frozenset(
        endpoint for flow in flows for endpoint in (flow.source, flow.destination)
    )
    compiled = None
    if args.scenario_family:
        compiled = _compiled_family(topology, args, args.duration)
        schedule = compiled.fault_schedule()
        print(
            f"chaos run: scenario family {compiled.family_name!r} "
            f"(seed {compiled.seed}), {args.duration:g}s, "
            f"{len(compiled.events)} event(s), {len(schedule)} fault(s), "
            f"schedule {schedule.fingerprint()}"
        )
    else:
        spec = ChaosSpec(
            duration_s=args.duration,
            crashes=args.crashes,
            blackholes=args.blackholes,
            partitions=args.partitions,
            stalls=args.stalls,
            message_fault_windows=args.message_windows,
            protected_nodes=protected,
        )
        schedule = generate_fault_schedule(
            topology, spec, seed=args.seed, flows=tuple(flow.name for flow in flows)
        )
        print(
            f"chaos run: seed {args.seed}, {args.duration:g}s, "
            f"{len(schedule)} fault(s), schedule {schedule.fingerprint()}"
        )
    obs = None
    if args.trace:
        from repro.obs import Observability

        # Flight snapshots dump into the artifact directory the moment an
        # invariant fires, not only at export time.
        obs = Observability(flight_dir=args.trace_out)
    exit_code = 0
    rows = []
    for scheme in schemes:
        # The live world: the scenario family's compiled timeline (so the
        # network sees the same conditions the analytic replay does), or a
        # clean one for classic generated chaos.
        if compiled is not None:
            timeline = compiled.timeline(horizon_s=args.duration + 1.0)
        else:
            timeline = ConditionTimeline(topology, args.duration + 1.0)
        if obs is not None:
            obs.tracer.context = {"scheme": scheme}
        harness = build_overlay(
            topology, timeline, flows, service, scheme, seed=args.seed, obs=obs
        )
        harness.start()
        harness.run(args.duration, faults=schedule)
        harness.stop_traffic()
        harness.invariants.check_convergence()
        unhealthy = harness.flow_health()
        if unhealthy:
            _LOG.info(
                "unhealthy flows under %s: %s", scheme, ", ".join(unhealthy)
            )
        violations = harness.invariants.violations
        for flow in flows:
            report = harness.reports[flow.name]
            rows.append(
                (scheme, flow.name, report.sent, report.on_time,
                 report.on_time_fraction, len(violations))
            )
        if violations:
            exit_code = 1
            for violation in violations:
                _LOG.error(
                    "INVARIANT [%s] t=%.3fs %s: %s",
                    scheme,
                    violation.at_s,
                    violation.invariant,
                    violation.detail,
                )
    print()
    print(f"{'scheme':<22} {'flow':<12} {'sent':>6} {'on-time':>8} "
          f"{'fraction':>9} {'violations':>11}")
    for scheme, flow, sent, on_time, fraction, violations in rows:
        print(
            f"{scheme:<22} {flow:<12} {sent:>6} {on_time:>8} "
            f"{fraction:>9.3f} {violations:>11}"
        )
    if obs is not None:
        from repro.obs import RunManifest, topology_fingerprint

        manifest = RunManifest(
            label="chaos",
            seed=args.seed,
            schemes=tuple(schemes),
            flows=tuple(flow.name for flow in flows),
            topology=topology_fingerprint(topology),
            duration_s=args.duration,
            extra={
                "schedule": schedule.fingerprint(),
                "faults": len(schedule),
            },
        )
        paths = obs.export(args.trace_out, manifest)
        names = ", ".join(sorted(path.name for path in paths.values()))
        print(f"\nwrote trace artifacts to {args.trace_out}/: {names}")
    if exit_code:
        _LOG.error("invariant violations detected")
    return exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeConfig, serve_main

    _apply_kernel_choice(args)

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_active=args.max_active,
        max_queue=args.max_queue,
        workers=args.workers,
        contexts=args.contexts,
        cache_dir=args.cache_dir,
        use_disk_cache=not args.no_cache,
    )
    return asyncio.run(serve_main(config))


def _split_names(value: str | None) -> tuple[str, ...] | None:
    if value is None:
        return None
    names = tuple(name.strip() for name in value.split(",") if name.strip())
    return names or None


def _client_request(args: argparse.Namespace):
    """Build the wire payload for one ``repro client`` invocation."""
    import json

    from repro.serve import ChaosRequest, ClassifyRequest, EvaluateRequest

    if args.action == "submit":
        try:
            with open(args.file, encoding="utf-8") as handle:
                return json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"request file {args.file} is not valid JSON: {error}"
            ) from error
    if args.action == "evaluate":
        return EvaluateRequest(
            weeks=args.weeks,
            seed=args.seed,
            preset=args.preset,
            deadline_ms=args.deadline_ms,
            detection_delay_s=args.detection_delay_s,
            time_shards=args.time_shards,
            workers=args.workers,
            schemes=_split_names(args.schemes),
            flows=_split_names(args.flows),
            use_cache=not args.no_cache,
            scenario_family=args.scenario_family,
            scenario_seed=args.scenario_seed,
            topology_family=args.topology_family,
            topology_size=args.topology_size,
            topology_seed=args.topology_seed,
        )
    if args.action == "classify":
        return ClassifyRequest(
            weeks=args.weeks,
            seed=args.seed,
            preset=args.preset,
            deadline_ms=args.deadline_ms,
        )
    assert args.action == "chaos"
    return ChaosRequest(
        seed=args.seed,
        duration_s=args.duration,
        schemes=_split_names(args.schemes) or ("targeted", "static-single"),
        flows=_split_names(args.flows),
        crashes=args.crashes,
        blackholes=args.blackholes,
        partitions=args.partitions,
        stalls=args.stalls,
        message_windows=args.message_windows,
        deadline_ms=args.deadline_ms,
        send_interval_ms=args.send_interval_ms,
        scenario_family=args.scenario_family,
        scenario_seed=args.scenario_seed,
        topology_family=args.topology_family,
        topology_size=args.topology_size,
        topology_seed=args.topology_seed,
    )


def _print_client_result(args: argparse.Namespace, result: dict, manifest: dict) -> int:
    """Render a served result; returns the exit code (chaos violations -> 1)."""
    import json

    if args.json:
        print(json.dumps({"result": result, "manifest": manifest}, indent=1,
                         sort_keys=True))
    elif args.action == "evaluate" or "schemes" in result:
        print(f"{'scheme':<22} {'availability':>13} {'avg msgs/pkt':>13}")
        for row in result.get("schemes", ()):
            print(
                f"{row['scheme']:<22} {row['availability']:>13.6f} "
                f"{row['average_cost_messages']:>13.2f}"
            )
    elif "distribution" in result:
        print(f"{'category':<28} {'fraction':>9} {'count':>6}")
        counts = result.get("counts", {})
        for category, fraction in sorted(result["distribution"].items()):
            print(
                f"{category:<28} {fraction:>9.4f} "
                f"{counts.get(category, 0):>6}"
            )
    elif "rows" in result:
        print(f"{'scheme':<22} {'flow':<12} {'sent':>6} {'on-time':>8} "
              f"{'fraction':>9} {'violations':>11}")
        for row in result["rows"]:
            print(
                f"{row['scheme']:<22} {row['flow']:<12} {row['sent']:>6} "
                f"{row['on_time']:>8} {row['on_time_fraction']:>9.3f} "
                f"{row['violations']:>11}"
            )
    serve_extra = manifest.get("extra", {}).get("serve", {})
    cache_bits = []
    if "context_warm" in serve_extra:
        cache_bits.append(f"context_warm={serve_extra['context_warm']}")
    if "shards_cached" in serve_extra:
        cache_bits.append(f"shards_cached={serve_extra['shards_cached']}")
    if cache_bits and not args.json:
        print(f"cache: {' '.join(cache_bits)}")
    violations = result.get("violations")
    if violations:
        _LOG.error("%d invariant violation(s) reported by the server", violations)
        return 1
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    import json

    from repro.serve import ServeClient, ServerError, ServerRejected

    client = ServeClient(host=args.host, port=args.port, timeout_s=args.timeout)
    if args.action == "status":
        print(json.dumps(client.status(), indent=1, sort_keys=True))
        return 0
    if args.action == "shutdown":
        outcome = client.shutdown()
        print(
            f"server drained and stopped: {outcome.get('completed', 0)} "
            f"completed, {outcome.get('failed', 0)} failed, "
            f"{outcome.get('rejected', 0)} rejected"
        )
        return 0
    request = _client_request(args)
    try:
        result, manifest, progress = client.run(request)
    except ServerRejected as rejected:
        hint = (
            f"; retry in {rejected.retry_after_s:g}s"
            if rejected.retry_after_s is not None
            else ""
        )
        _LOG.error("request rejected: %s%s", rejected.reason, hint)
        return 1
    except ServerError as error:
        _LOG.error("request failed: %s", error)
        return 1
    if not args.json:
        for event in progress:
            detail = ", ".join(
                f"{key}={value}"
                for key, value in sorted(event.items())
                if key not in ("event", "phase")
            )
            print(f"[{event.get('phase')}] {detail}")
    return _print_client_result(args, result, manifest)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-dgraphs",
        description="Dissemination-graph overlay transport (ICDCS 2017 reproduction)",
        # No prefix abbreviations: ``classify --trace`` must fail loudly
        # rather than silently match ``--trace-file`` (the historical
        # ``--trace`` spelling meant something else).
        allow_abbrev=False,
    )
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="warning",
        help="stderr diagnostic verbosity (default: warning)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate-trace", help="synthesise a condition trace"
    )
    _add_trace_arguments(generate)
    _add_topology_arguments(generate)
    generate.add_argument("output", help="output trace file (JSONL)")
    generate.set_defaults(handler=_cmd_generate_trace)

    evaluate = subparsers.add_parser(
        "evaluate", help="replay all routing schemes and print the tables"
    )
    _add_trace_arguments(evaluate)
    evaluate.add_argument(
        "--trace-file", help="replay this condition-trace file instead"
    )
    _add_scenario_family_arguments(evaluate)
    _add_topology_arguments(evaluate)
    _add_obs_arguments(evaluate)
    evaluate.add_argument("--deadline-ms", type=float, default=65.0)
    evaluate.add_argument("--detection-delay-s", type=float, default=1.0)
    evaluate.add_argument(
        "--schemes",
        help="comma-separated routing schemes (default: the standard six)",
    )
    evaluate.add_argument(
        "--flows",
        help="comma-separated flow names (default: the topology's whole "
        "flow table)",
    )
    evaluate.add_argument(
        "--per-flow", action="store_true", help="also print per-flow coverage"
    )
    evaluate.add_argument(
        "--export-dir", help="also write the tables as CSV into this directory"
    )
    evaluate.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for the execution engine (0 = in-process serial)",
    )
    evaluate.add_argument(
        "--time-shards",
        type=int,
        default=1,
        help="additionally cut each (flow, scheme) pair into this many time shards",
    )
    evaluate.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the content-addressed result cache",
    )
    evaluate.add_argument(
        "--cache-dir",
        help="result cache directory (default: $REPRO_EXEC_CACHE_DIR or "
        "~/.cache/repro-dgraphs/exec)",
    )
    evaluate.add_argument(
        "--profile",
        action="store_true",
        help="attach the sampling wall-clock profiler to the replay and "
        "print its top self-time frames (with --trace, also writes "
        "profile.collapsed into --trace-out and embeds the summary in "
        "the run manifest)",
    )
    evaluate.add_argument(
        "--profile-interval-ms",
        type=float,
        default=5.0,
        help="sampling period of --profile in milliseconds (default: 5)",
    )
    _add_kernel_argument(evaluate)
    evaluate.set_defaults(handler=_cmd_evaluate)

    classify = subparsers.add_parser(
        "classify",
        help="problem-classification distribution (E1)",
        allow_abbrev=False,
    )
    _add_trace_arguments(classify)
    classify.add_argument(
        "--trace-file", help="classify this condition-trace file instead"
    )
    classify.set_defaults(handler=_cmd_classify)

    graphs = subparsers.add_parser(
        "graphs", help="print every dissemination-graph family for one flow"
    )
    graphs.add_argument("source")
    graphs.add_argument("destination")
    graphs.add_argument("--deadline-ms", type=float, default=65.0)
    graphs.set_defaults(handler=_cmd_graphs)

    chaos = subparsers.add_parser(
        "chaos",
        help="run the overlay under a seeded fault schedule and check invariants",
    )
    chaos.add_argument("--seed", type=int, default=7, help="fault-schedule seed")
    chaos.add_argument(
        "--duration", type=float, default=30.0, help="run length in seconds"
    )
    chaos.add_argument(
        "--schemes",
        default="targeted,static-single",
        help="comma-separated routing schemes to compare",
    )
    chaos.add_argument(
        "--flows",
        help="comma-separated flow names like NYC->LAX (default: two "
        "representative reference flows)",
    )
    chaos.add_argument("--crashes", type=int, default=1)
    chaos.add_argument("--blackholes", type=int, default=1)
    chaos.add_argument("--partitions", type=int, default=0)
    chaos.add_argument("--stalls", type=int, default=0)
    chaos.add_argument(
        "--message-windows",
        type=int,
        default=0,
        help="windows of message duplication/reordering/corruption",
    )
    chaos.add_argument("--deadline-ms", type=float, default=65.0)
    chaos.add_argument(
        "--send-interval-ms",
        type=float,
        default=50.0,
        help="packet pacing (larger = faster simulation)",
    )
    _add_scenario_family_arguments(chaos)
    _add_topology_arguments(chaos)
    _add_obs_arguments(chaos)
    chaos.set_defaults(handler=_cmd_chaos)

    topology = subparsers.add_parser(
        "topology",
        help="generate or inspect seeded overlay topologies (repro.topogen)",
    )
    topology_actions = topology.add_subparsers(
        dest="topology_command", required=True
    )
    t_generate = topology_actions.add_parser(
        "generate",
        help="emit one (family, size, seed) artifact as canonical JSON "
        "(byte-identical across runs and machines)",
    )
    t_generate.add_argument(
        "--family",
        required=True,
        help="generator family: random-geo, waxman, isp-hier, continental",
    )
    t_generate.add_argument(
        "--size", type=int, required=True, help="node count"
    )
    t_generate.add_argument(
        "--seed", type=int, default=0, help="generator seed (default: 0)"
    )
    t_generate.add_argument(
        "--out", help="write the artifact here instead of stdout"
    )
    t_generate.set_defaults(handler=_cmd_topology)
    t_info = topology_actions.add_parser(
        "info",
        help="summarise an artifact file or a (family, size, seed) triple",
    )
    t_info.add_argument(
        "path", nargs="?", help="artifact JSON written by `topology generate`"
    )
    t_info.add_argument("--family", help="generate-and-summarise this family")
    t_info.add_argument("--size", type=int, help="node count for --family")
    t_info.add_argument(
        "--seed", type=int, help="generator seed (default: 0)"
    )
    t_info.add_argument(
        "--flows",
        action="store_true",
        help="also list the topology's default flow table",
    )
    t_info.set_defaults(handler=_cmd_topology)

    cache = subparsers.add_parser(
        "cache",
        help="inspect, evict, or size-cap the execution engine's result cache",
    )
    cache.add_argument("action", choices=("info", "clear", "prune"))
    cache.add_argument(
        "--cache-dir",
        help="result cache directory (default: $REPRO_EXEC_CACHE_DIR or "
        "~/.cache/repro-dgraphs/exec)",
    )
    cache.add_argument(
        "--max-bytes",
        type=int,
        help="(prune) evict least-recently-used entries down to this size",
    )
    cache.set_defaults(handler=_cmd_cache)

    obs = subparsers.add_parser(
        "obs",
        help="inspect a traced run's observability artifacts, or watch a "
        "live daemon's metrics endpoint",
    )
    obs.add_argument("action", choices=("summary", "export", "flight", "watch"))
    obs.add_argument(
        "dir",
        nargs="?",
        help="artifact directory written by --trace-out "
        "(summary/export/flight only)",
    )
    obs.add_argument(
        "--prefix",
        help="(summary) also print every metric whose name has this prefix "
        "('' prints all)",
    )
    obs.add_argument(
        "--out", help="(export) output path (default: <dir>/trace.json)"
    )
    obs.add_argument("--host", default="127.0.0.1", help="(watch) daemon host")
    obs.add_argument(
        "--port", type=int, default=8787, help="(watch) daemon port"
    )
    obs.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="(watch) seconds between polls (default: 2)",
    )
    obs.add_argument(
        "--iterations",
        type=int,
        help="(watch) stop after this many frames (default: run until ^C)",
    )
    obs.set_defaults(handler=_cmd_obs)

    bench = subparsers.add_parser(
        "bench",
        help="track benchmark artifacts over time and flag regressions",
    )
    bench_actions = bench.add_subparsers(dest="bench_command", required=True)
    history = bench_actions.add_parser(
        "history",
        help="append BENCH_<exp>.json artifacts to the per-branch history "
        "and check the newest run against the noise band",
    )
    history.add_argument("action", choices=("ingest", "check"))
    history.add_argument(
        "--bench-out",
        default="bench-out",
        help="(ingest) directory holding BENCH_<exp>.json artifacts "
        "(default: bench-out)",
    )
    history.add_argument(
        "--history-dir",
        default="bench-history",
        help="directory of per-branch history files (default: bench-history)",
    )
    history.add_argument(
        "--branch",
        help="history branch (default: $GITHUB_HEAD_REF / $GITHUB_REF_NAME / "
        "git HEAD / main)",
    )
    history.add_argument(
        "--commit", default="", help="(ingest) commit id to stamp entries with"
    )
    history.add_argument(
        "--window",
        type=int,
        default=20,
        help="(check) trailing baseline window per workload (default: 20)",
    )
    history.add_argument(
        "--rel-threshold",
        type=float,
        default=0.05,
        help="(check) relative floor of the noise band (default: 0.05)",
    )
    history.add_argument(
        "--mad-factor",
        type=float,
        default=3.0,
        help="(check) MAD multiplier of the noise band (default: 3)",
    )
    history.add_argument(
        "--annotate",
        action="store_true",
        help="(check) also print GitHub Actions annotation lines "
        "(regressions as warnings -- soft fail)",
    )
    history.add_argument(
        "--strict",
        action="store_true",
        help="(check) exit 1 when any regression is flagged",
    )
    history.set_defaults(handler=_cmd_bench)

    serve = subparsers.add_parser(
        "serve",
        help="start the evaluation daemon (warm caches, admission control, "
        "streaming JSONL results)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=8787,
        help="TCP port (default: 8787; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--max-active",
        type=int,
        default=2,
        help="requests running concurrently (default: 2)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=8,
        help="admitted requests allowed to wait for a slot; beyond this "
        "the server answers 429 with a Retry-After hint (default: 8)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="per-request cap on exec worker processes "
        "(0 = in-process serial; default: 0)",
    )
    serve.add_argument(
        "--contexts",
        type=int,
        default=4,
        help="warm shard-context LRU capacity (default: 4)",
    )
    serve.add_argument(
        "--cache-dir",
        help="shared result cache directory (default: $REPRO_EXEC_CACHE_DIR "
        "or ~/.cache/repro-dgraphs/exec)",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without the content-addressed disk cache",
    )
    _add_kernel_argument(serve)
    serve.set_defaults(handler=_cmd_serve)

    client = subparsers.add_parser(
        "client", help="talk to a running evaluation daemon"
    )
    client_common = argparse.ArgumentParser(add_help=False)
    client_common.add_argument("--host", default="127.0.0.1")
    client_common.add_argument("--port", type=int, default=8787)
    client_common.add_argument(
        "--timeout", type=float, default=600.0, help="socket timeout (seconds)"
    )
    client_common.add_argument(
        "--json",
        action="store_true",
        help="print the raw result and manifest as JSON",
    )
    actions = client.add_subparsers(dest="action", required=True)

    c_eval = actions.add_parser(
        "evaluate", parents=[client_common], help="submit an evaluation request"
    )
    c_eval.add_argument("--weeks", type=float, default=1.0)
    c_eval.add_argument("--seed", type=int, default=7)
    c_eval.add_argument("--preset", default="default")
    c_eval.add_argument("--deadline-ms", type=float, default=65.0)
    c_eval.add_argument("--detection-delay-s", type=float, default=1.0)
    c_eval.add_argument("--time-shards", type=int, default=1)
    c_eval.add_argument(
        "--workers",
        type=int,
        default=0,
        help="requested worker processes (capped by the server's budget)",
    )
    c_eval.add_argument("--schemes", help="comma-separated scheme names")
    c_eval.add_argument("--flows", help="comma-separated flow names")
    c_eval.add_argument(
        "--no-cache", action="store_true", help="ask the server to skip its disk cache"
    )
    _add_scenario_family_arguments(c_eval)
    _add_topology_arguments(c_eval)
    c_eval.set_defaults(handler=_cmd_client)

    c_classify = actions.add_parser(
        "classify", parents=[client_common], help="submit a classification request"
    )
    c_classify.add_argument("--weeks", type=float, default=1.0)
    c_classify.add_argument("--seed", type=int, default=7)
    c_classify.add_argument("--preset", default="default")
    c_classify.add_argument("--deadline-ms", type=float, default=65.0)
    c_classify.set_defaults(handler=_cmd_client)

    c_chaos = actions.add_parser(
        "chaos", parents=[client_common], help="submit a chaos request"
    )
    c_chaos.add_argument("--seed", type=int, default=7)
    c_chaos.add_argument("--duration", type=float, default=30.0)
    c_chaos.add_argument("--schemes", help="comma-separated scheme names")
    c_chaos.add_argument("--flows", help="comma-separated flow names")
    c_chaos.add_argument("--crashes", type=int, default=1)
    c_chaos.add_argument("--blackholes", type=int, default=1)
    c_chaos.add_argument("--partitions", type=int, default=0)
    c_chaos.add_argument("--stalls", type=int, default=0)
    c_chaos.add_argument("--message-windows", type=int, default=0)
    c_chaos.add_argument("--deadline-ms", type=float, default=65.0)
    c_chaos.add_argument("--send-interval-ms", type=float, default=50.0)
    _add_scenario_family_arguments(c_chaos)
    _add_topology_arguments(c_chaos)
    c_chaos.set_defaults(handler=_cmd_client)

    c_status = actions.add_parser(
        "status", parents=[client_common], help="print the server status JSON"
    )
    c_status.set_defaults(handler=_cmd_client)

    c_shutdown = actions.add_parser(
        "shutdown", parents=[client_common], help="drain and stop the server"
    )
    c_shutdown.set_defaults(handler=_cmd_client)

    c_submit = actions.add_parser(
        "submit",
        parents=[client_common],
        help="submit a raw JSON request document",
    )
    c_submit.add_argument("--file", required=True, help="path to the request JSON")
    c_submit.set_defaults(handler=_cmd_client)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    try:
        return args.handler(args)
    except (ValueError, OSError) as error:
        # Bad arguments or unreadable/unwritable inputs (missing trace,
        # permission-denied cache directory, ...): one line, no traceback.
        _LOG.error("%s", error)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
