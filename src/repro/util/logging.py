"""Structured stderr logging for the command-line entry points.

The CLI historically used bare ``print(..., file=sys.stderr)`` for its
error paths.  This module keeps the exact output contract -- one
``level: message`` line on stderr, no tracebacks -- while routing it
through the standard :mod:`logging` machinery, so ``--log-level debug``
can surface diagnostics and library code can log without knowing
whether it runs under the CLI, pytest, or an importing script.

The handler resolves ``sys.stderr`` at emit time (not at configuration
time) so pytest's capture fixtures see the output, and the logger
propagates so ``caplog`` keeps working.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["LOG_LEVELS", "configure_logging", "get_logger"]

#: Accepted ``--log-level`` values, least to most verbose-suppressing.
LOG_LEVELS = ("debug", "info", "warning", "error")

_ROOT_NAME = "repro"


class _DynamicStderrHandler(logging.Handler):
    """Writes to whatever ``sys.stderr`` is *now* (capsys-friendly)."""

    def emit(self, record: logging.LogRecord) -> None:
        try:
            sys.stderr.write(self.format(record) + "\n")
        except Exception:  # pragma: no cover - never raise from logging
            self.handleError(record)


class _LevelPrefixFormatter(logging.Formatter):
    """``error: message`` -- the CLI's historical one-line format."""

    def format(self, record: logging.LogRecord) -> str:
        return f"{record.levelname.lower()}: {record.getMessage()}"


def configure_logging(level: str = "warning") -> logging.Logger:
    """Set up the ``repro`` logger hierarchy for CLI use; idempotent."""
    if level not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; choose from {', '.join(LOG_LEVELS)}"
        )
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(getattr(logging, level.upper()))
    if not any(
        isinstance(handler, _DynamicStderrHandler) for handler in logger.handlers
    ):
        handler = _DynamicStderrHandler()
        handler.setFormatter(_LevelPrefixFormatter())
        logger.addHandler(handler)
    return logger


def get_logger(name: str) -> logging.Logger:
    """A child of the ``repro`` logger (``name`` without the prefix)."""
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
