"""Plain-text table rendering for reports and benchmark output.

The evaluation harness reproduces the paper's tables as aligned ASCII so
that bench output can be compared side by side with the paper.  Keeping the
renderer here (rather than in :mod:`repro.analysis`) lets the CLI and the
benches share it without pulling in analysis code.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: object, float_digits: int = 3) -> str:
    """Format a single table cell.

    Floats are fixed-point with ``float_digits`` digits; ints and strings
    pass through; ``None`` renders as ``-``.
    """
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_digits: int = 3,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    The first column is left-aligned (labels); remaining columns are
    right-aligned (numbers), matching typical paper tables.
    """
    formatted = [[format_cell(cell, float_digits) for cell in row] for row in rows]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
    widths = [len(header) for header in headers]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if index == 0:
                parts.append(cell.ljust(widths[index]))
            else:
                parts.append(cell.rjust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in formatted)
    return "\n".join(lines)
