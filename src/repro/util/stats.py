"""Tiny statistics helpers (pure Python, dependency-free).

The core library avoids numpy so it stays importable in minimal
environments; benches may use numpy freely.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["mean", "percentile", "empirical_cdf", "weighted_mean"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted mean; raises on empty input or zero total weight."""
    if len(values) != len(weights):
        raise ValueError("values and weights must have equal length")
    total_weight = sum(weights)
    if total_weight <= 0:
        raise ValueError("total weight must be positive")
    return sum(v * w for v, w in zip(values, weights)) / total_weight


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def empirical_cdf(values: Iterable[float]) -> list[tuple[float, float]]:
    """Return the empirical CDF as sorted ``(value, fraction <= value)`` pairs."""
    ordered = sorted(values)
    if not ordered:
        return []
    n = len(ordered)
    points: list[tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, index / n)
        else:
            points.append((value, index / n))
    return points
