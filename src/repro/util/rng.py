"""Deterministic, keyed random streams.

The trace replayers compare several routing schemes against the *same*
network behaviour (the paper replays all schemes over the same recorded
data).  To make that sound in a Monte-Carlo setting we use *common random
numbers*: whether a given packet copy survives a given link at a given time
is a pure function of ``(seed, link, packet sequence number)``, independent
of which scheme is being evaluated and of evaluation order.

:func:`hash_uniform` provides that pure function via SHA-256.  It is slower
than a PRNG step but fully order-independent, reproducible across platforms
and Python versions, and has no shared mutable state, which also makes it
trivially safe to use from property-based tests.

:class:`DeterministicStream` wraps a keyed context so callers do not have to
thread tuples of key parts through every call site.
"""

from __future__ import annotations

import hashlib
import math
import struct
from typing import Iterable, Sequence

__all__ = ["hash_uniform", "hash_randint", "DeterministicStream"]

_MAX64 = float(2**64)


def _digest(parts: Iterable[object]) -> bytes:
    hasher = hashlib.sha256()
    for part in parts:
        if isinstance(part, bytes):
            hasher.update(b"b")
            hasher.update(part)
        elif isinstance(part, str):
            hasher.update(b"s")
            hasher.update(part.encode("utf-8"))
        elif isinstance(part, bool):
            # bool before int: bool is an int subclass.
            hasher.update(b"o1" if part else b"o0")
        elif isinstance(part, int):
            hasher.update(b"i")
            hasher.update(str(part).encode("ascii"))
        elif isinstance(part, float):
            hasher.update(b"f")
            hasher.update(struct.pack("<d", part))
        elif isinstance(part, (tuple, list)):
            hasher.update(b"t(")
            hasher.update(_digest(part))
            hasher.update(b")")
        elif part is None:
            hasher.update(b"n")
        else:
            raise TypeError(f"unhashable key part for rng: {part!r}")
        hasher.update(b"\x00")
    return hasher.digest()


def hash_uniform(*key_parts: object) -> float:
    """Return a uniform float in ``[0, 1)`` determined purely by the key.

    The same key always yields the same value; distinct keys yield
    independent-looking values.
    """
    digest = _digest(key_parts)
    value = int.from_bytes(digest[:8], "big")
    return value / _MAX64


def hash_randint(upper: int, *key_parts: object) -> int:
    """Return an int in ``[0, upper)`` determined purely by the key."""
    if upper <= 0:
        raise ValueError(f"upper must be positive, got {upper}")
    digest = _digest(key_parts)
    value = int.from_bytes(digest[:16], "big")
    return value % upper


class DeterministicStream:
    """A keyed random stream with common scalar distributions.

    A stream is identified by a ``seed`` plus an arbitrary tuple of context
    key parts.  Every draw additionally takes its own key parts, so draws
    are independent of call order::

        stream = DeterministicStream(42, "trace")
        p = stream.uniform("link", "NYC", "CHI", 1234)

    ``substream`` derives a child stream with an extended context, which is
    how per-link / per-event keying is usually structured.
    """

    __slots__ = ("_seed", "_context")

    def __init__(self, seed: int, *context: object) -> None:
        self._seed = int(seed)
        self._context: tuple[object, ...] = tuple(context)

    @property
    def seed(self) -> int:
        """The stream's integer seed."""
        return self._seed

    @property
    def context(self) -> tuple[object, ...]:
        """The stream's context key parts."""
        return self._context

    def substream(self, *context: object) -> "DeterministicStream":
        """Derive a child stream whose context extends this stream's."""
        return DeterministicStream(self._seed, *self._context, *context)

    # -- scalar draws ------------------------------------------------------

    def uniform(self, *key: object) -> float:
        """Uniform in ``[0, 1)``."""
        return hash_uniform(self._seed, *self._context, *key)

    def uniform_between(self, low: float, high: float, *key: object) -> float:
        """Uniform in ``[low, high)``."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high})")
        return low + (high - low) * self.uniform(*key)

    def randint(self, upper: int, *key: object) -> int:
        """Integer uniform in ``[0, upper)``."""
        return hash_randint(upper, self._seed, *self._context, *key)

    def choice(self, options: Sequence[object], *key: object) -> object:
        """Uniform choice among ``options``."""
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        return options[self.randint(len(options), *key)]

    def bernoulli(self, probability: float, *key: object) -> bool:
        """True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        return self.uniform(*key) < probability

    def exponential(self, mean: float, *key: object) -> float:
        """Exponential with the given mean (inverse-CDF method)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        u = self.uniform(*key)
        # Guard against log(0); u is in [0, 1).
        return -mean * math.log(1.0 - u)

    def lognormal(self, median: float, sigma: float, *key: object) -> float:
        """Log-normal parameterised by its median and log-space sigma."""
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        return median * math.exp(sigma * self.normal(*key))

    def normal(self, *key: object) -> float:
        """Standard normal via Box-Muller on two keyed uniforms."""
        u1 = self.uniform(*key, "bm-u1")
        u2 = self.uniform(*key, "bm-u2")
        # Avoid log(0).
        u1 = max(u1, 1e-300)
        return math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeterministicStream(seed={self._seed}, context={self._context!r})"
