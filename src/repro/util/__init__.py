"""Shared low-level utilities.

This subpackage deliberately has no dependencies on the rest of
:mod:`repro` so that every other subpackage may use it freely.
"""

from repro.util.rng import DeterministicStream, hash_uniform
from repro.util.tables import render_table
from repro.util.validation import require

__all__ = [
    "DeterministicStream",
    "hash_uniform",
    "render_table",
    "require",
]
