"""Small argument-validation helpers used across the library."""

from __future__ import annotations

from typing import NoReturn


class ValidationError(ValueError):
    """Raised when a caller supplies an argument that violates a contract."""


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``.

    This is used for *caller* errors (bad arguments), never for internal
    invariants -- internal invariants use ``assert`` so they can be compiled
    out and so that their failure clearly indicates a library bug.
    """
    if not condition:
        raise ValidationError(message)


def fail(message: str) -> NoReturn:
    """Unconditionally raise :class:`ValidationError`."""
    raise ValidationError(message)


def require_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability in ``[0, 1]`` and return it."""
    require(0.0 <= value <= 1.0, f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    require(value > 0, f"{name} must be > 0, got {value!r}")
    return float(value)


def require_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0 and return it."""
    require(value >= 0, f"{name} must be >= 0, got {value!r}")
    return float(value)
