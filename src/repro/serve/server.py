"""The evaluation daemon: asyncio HTTP on localhost, stdlib only.

One long-lived process serves evaluation, classification, and chaos
requests as JSON over a minimal HTTP/1.1 surface:

* ``POST /v1/submit`` -- submit one request document
  (:mod:`repro.serve.schema`); the response is a chunked JSONL event
  stream: ``accepted``, ``progress``..., ``result``, and finally the
  run ``manifest`` (or a terminal ``error``).  Requests that fail
  admission control are answered ``429``/``503`` with a ``Retry-After``
  hint and never enter the stream;
* ``GET /v1/status`` -- scheduler depth, request counters, and the
  server-lifetime cache statistics as one JSON object;
* ``POST /v1/shutdown`` -- graceful drain (finish everything admitted,
  reject the rest), then stop; the response arrives once drained.
  SIGTERM/SIGINT trigger the same path.

Requests execute in worker threads (``asyncio.to_thread``) against the
shared :class:`~repro.serve.state.ServeRuntime`, so the probability
memo, mask-classification cache, and content-addressed exec shard cache
stay warm across requests.  The event loop owns all scheduling state
and all ``serve.*`` metrics; worker threads communicate progress back
through a thread-safe queue, which keeps the observability registry
single-writer and race-free.
"""

from __future__ import annotations

import asyncio
import errno
import json
import math
import threading
import time
from dataclasses import dataclass
from itertools import count

from repro.obs import Observability, RunManifest
from repro.obs.expose import CONTENT_TYPE as METRICS_CONTENT_TYPE
from repro.obs.expose import render_exposition
from repro.serve.scheduler import RequestRejected, Scheduler
from repro.serve.schema import PROTOCOL_VERSION, make_event, parse_request
from repro.serve.session import execute_request
from repro.serve.state import ServeRuntime
from repro.util.logging import get_logger
from repro.util.validation import ValidationError

__all__ = ["DEFAULT_PORT", "ServeConfig", "EvalServer", "ServerThread", "serve_main"]

_LOG = get_logger("serve")

#: Default TCP port of the evaluation daemon (``repro serve --port``).
DEFAULT_PORT = 8787

#: Hard ceiling on request-document size; far above any legitimate request.
_MAX_BODY_BYTES = 1 << 20

#: Per-read timeout while parsing a request (slowloris guard).
_READ_TIMEOUT_S = 30.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Sentinel closing a request's progress queue.
_DONE = object()


@dataclass(frozen=True)
class ServeConfig:
    """Daemon knobs (the CLI flags of ``repro serve``)."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT  # 0 = ephemeral (tests and benches)
    max_active: int = 2  # concurrently running requests
    max_queue: int = 8  # admitted requests waiting for a slot
    workers: int = 0  # per-request exec worker-process budget
    contexts: int = 4  # warm shard-context LRU capacity
    cache_dir: str | None = None  # shared exec shard cache location
    use_disk_cache: bool = True


class _HttpError(Exception):
    """Protocol-level failure answered with a simple JSON body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _EventStream:
    """Chunked JSONL writer that degrades quietly on client disconnect.

    A client that goes away mid-stream must not fail the request -- the
    work is admitted and its caches stay warm either way -- so every
    write is guarded and the stream just stops transmitting.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self.open = True

    async def _write(self, data: bytes) -> None:
        if not self.open:
            return
        try:
            self._writer.write(data)
            await self._writer.drain()
        except (ConnectionError, OSError):
            self.open = False

    async def head(self, status: int = 200) -> None:
        await self._write(
            _response_head(
                status,
                [
                    ("Content-Type", "application/x-ndjson"),
                    ("Transfer-Encoding", "chunked"),
                    ("Connection", "close"),
                ],
            )
        )

    async def send(self, event: dict) -> None:
        data = json.dumps(event, sort_keys=True).encode("utf-8") + b"\n"
        await self._write(b"%x\r\n%s\r\n" % (len(data), data))

    async def finish(self) -> None:
        await self._write(b"0\r\n\r\n")


def _response_head(status: int, headers: list[tuple[str, str]]) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("utf-8")


async def _send_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict,
    extra_headers: list[tuple[str, str]] | None = None,
) -> None:
    body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
    headers = [
        ("Content-Type", "application/json"),
        ("Content-Length", str(len(body))),
        ("Connection", "close"),
    ]
    headers.extend(extra_headers or [])
    try:
        writer.write(_response_head(status, headers) + body)
        await writer.drain()
    except (ConnectionError, OSError):
        pass


async def _read_http_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes]:
    """Parse one HTTP/1.1 request; raises :class:`_HttpError` on bad input."""

    async def read_line() -> bytes:
        try:
            line = await asyncio.wait_for(
                reader.readline(), timeout=_READ_TIMEOUT_S
            )
        except asyncio.TimeoutError as error:
            raise _HttpError(400, "timed out reading request") from error
        if len(line) > 8192:
            raise _HttpError(400, "request line or header too long")
        return line

    request_line = (await read_line()).strip()
    if not request_line:
        raise _HttpError(400, "empty request")
    parts = request_line.split()
    if len(parts) != 3:
        raise _HttpError(400, f"malformed request line {request_line!r}")
    method, target, _version = (part.decode("latin-1") for part in parts)
    headers: dict[str, str] = {}
    for _ in range(64):
        line = await read_line()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _sep, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _HttpError(400, "too many headers")
    raw_length = headers.get("content-length", "0")
    try:
        content_length = int(raw_length)
    except ValueError as error:
        raise _HttpError(400, f"bad Content-Length {raw_length!r}") from error
    if content_length < 0 or content_length > _MAX_BODY_BYTES:
        raise _HttpError(400, f"unreasonable Content-Length {content_length}")
    body = b""
    if content_length:
        try:
            body = await asyncio.wait_for(
                reader.readexactly(content_length), timeout=_READ_TIMEOUT_S
            )
        except (asyncio.IncompleteReadError, asyncio.TimeoutError) as error:
            raise _HttpError(400, "request body truncated") from error
    return method, target, headers, body


class EvalServer:
    """The daemon: admission control in front of warm-state sessions."""

    def __init__(
        self, config: ServeConfig = ServeConfig(), obs: Observability | None = None
    ) -> None:
        self.config = config
        self.obs = obs if obs is not None else Observability()
        self.runtime = ServeRuntime(
            worker_budget=config.workers,
            context_capacity=config.contexts,
            cache_dir=config.cache_dir,
            use_disk_cache=config.use_disk_cache,
        )
        self.scheduler = Scheduler(
            max_active=config.max_active,
            max_queue=config.max_queue,
            obs=self.obs,
        )
        self.requests_completed = 0
        self.requests_failed = 0
        self.requests_rejected = 0
        self._started_monotonic = time.monotonic()
        self._ids = count(1)
        self._server: asyncio.AbstractServer | None = None
        self._stopped = asyncio.Event()
        self._shutdown_started = False
        self._connections: set[asyncio.Task] = set()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (raises ``OSError`` on a busy port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        _LOG.info("serving on %s:%d", self.config.host, self.port)

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` to the actual one)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    def begin_shutdown(self) -> None:
        """Start a graceful drain-then-stop (idempotent; loop thread only)."""
        if self._shutdown_started:
            return
        self._shutdown_started = True
        asyncio.get_running_loop().create_task(self._graceful_stop())

    async def _graceful_stop(self) -> None:
        await self.scheduler.drain()
        self._stopped.set()

    async def serve_until_stopped(self) -> None:
        """Serve until a shutdown (endpoint or signal) completes draining."""
        assert self._server is not None, "server not started"
        try:
            await self._stopped.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            # Let in-flight handlers (e.g. the shutdown response itself)
            # finish writing before the loop goes away.
            pending = {
                task
                for task in self._connections
                if task is not asyncio.current_task()
            }
            if pending:
                await asyncio.wait(pending, timeout=10.0)

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            try:
                method, target, _headers, body = await _read_http_request(reader)
                await self._route(writer, method, target, body)
            except _HttpError as error:
                await _send_json(
                    writer,
                    error.status,
                    make_event("error", code=error.status, error=str(error)),
                )
                return
        except (ConnectionError, OSError):
            pass
        except Exception:  # pragma: no cover - last-resort containment
            _LOG.exception("unhandled error in connection handler")
            await _send_json(
                writer,
                500,
                make_event("error", code=500, error="internal server error"),
            )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if task is not None:
                self._connections.discard(task)

    async def _route(
        self, writer: asyncio.StreamWriter, method: str, target: str, body: bytes
    ) -> None:
        target = target.split("?", 1)[0]
        if target == "/v1/status":
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {target}")
            await _send_json(writer, 200, self._status_payload())
        elif target == "/v1/metrics":
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {target}")
            await self._handle_metrics(writer)
        elif target == "/v1/health":
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {target}")
            await self._handle_health(writer)
        elif target == "/v1/submit":
            if method != "POST":
                raise _HttpError(405, f"{method} not allowed on {target}")
            await self._handle_submit(writer, body)
        elif target == "/v1/shutdown":
            if method != "POST":
                raise _HttpError(405, f"{method} not allowed on {target}")
            await self._handle_shutdown(writer)
        else:
            await _send_json(
                writer,
                404,
                make_event("error", code=404, error=f"no such endpoint {target}"),
            )

    # -- endpoints -------------------------------------------------------------

    def _status_payload(self) -> dict:
        return {
            "server": "repro-serve",
            "protocol_version": PROTOCOL_VERSION,
            "scheduler": {
                "active": self.scheduler.active,
                "queued": self.scheduler.queued,
                "max_active": self.scheduler.max_active,
                "max_queue": self.scheduler.max_queue,
                "draining": self.scheduler.draining,
            },
            "requests": {
                "completed": self.requests_completed,
                "failed": self.requests_failed,
                "rejected": self.requests_rejected,
            },
            "cache": self.runtime.cache_stats(),
        }

    async def _handle_metrics(self, writer: asyncio.StreamWriter) -> None:
        """Prometheus text exposition of the daemon's live registry."""
        self._mirror_cache_gauges()
        self.obs.metrics.gauge("serve.uptime_s").set(
            time.monotonic() - self._started_monotonic
        )
        body = render_exposition(self.obs.metrics).encode("utf-8")
        try:
            writer.write(
                _response_head(
                    200,
                    [
                        ("Content-Type", METRICS_CONTENT_TYPE),
                        ("Content-Length", str(len(body))),
                        ("Connection", "close"),
                    ],
                )
                + body
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _handle_health(self, writer: asyncio.StreamWriter) -> None:
        """Liveness (we answered) + readiness (not draining -> 200)."""
        draining = self.scheduler.draining or self._shutdown_started
        await _send_json(
            writer,
            503 if draining else 200,
            {
                "status": "draining" if draining else "ok",
                "draining": draining,
                "active": self.scheduler.active,
                "queued": self.scheduler.queued,
                "uptime_s": round(
                    time.monotonic() - self._started_monotonic, 3
                ),
            },
        )

    async def _handle_shutdown(self, writer: asyncio.StreamWriter) -> None:
        _LOG.info("shutdown requested; draining %d request(s)", self.scheduler.depth)
        self.begin_shutdown()
        await self._stopped.wait()
        await _send_json(
            writer,
            200,
            make_event(
                "shutdown",
                drained=True,
                completed=self.requests_completed,
                failed=self.requests_failed,
                rejected=self.requests_rejected,
            ),
        )

    async def _handle_submit(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            await _send_json(
                writer,
                400,
                make_event(
                    "error", code=400,
                    error=f"request body is not valid JSON: {error}",
                ),
            )
            return
        try:
            request = parse_request(payload)
        except ValidationError as error:
            self.obs.metrics.counter("serve.requests.invalid").inc()
            await _send_json(
                writer, 400, make_event("error", code=400, error=str(error))
            )
            return
        request_id = f"r{next(self._ids)}"
        admit_from = self.obs.tracer.now()
        try:
            async with self.scheduler.slot():
                admitted_at = self.obs.tracer.now()
                self.obs.tracer.complete(
                    "request.queued", "serve", admit_from, admitted_at,
                    request_id=request_id, kind=request.kind,
                )
                self.obs.metrics.counter("serve.requests.accepted").inc()
                self.obs.metrics.counter(
                    f"serve.requests.accepted.{request.kind}"
                ).inc()
                await self._run_admitted(writer, request, request_id)
        except RequestRejected as rejected:
            self.requests_rejected += 1
            self.obs.metrics.counter("serve.requests.rejected").inc()
            _LOG.info(
                "rejected %s request (%s; retry in %.1fs)",
                request.kind, rejected.reason, rejected.retry_after_s,
            )
            await _send_json(
                writer,
                rejected.status,
                make_event(
                    "rejected",
                    reason=rejected.reason,
                    retry_after_s=rejected.retry_after_s,
                ),
                extra_headers=[
                    ("Retry-After", str(math.ceil(rejected.retry_after_s)))
                ],
            )

    async def _run_admitted(
        self, writer: asyncio.StreamWriter, request, request_id: str
    ) -> None:
        stream = _EventStream(writer)
        await stream.head(200)
        await stream.send(
            make_event(
                "accepted",
                request_id=request_id,
                kind=request.kind,
                queue_depth=self.scheduler.depth,
            )
        )
        loop = asyncio.get_running_loop()
        progress: asyncio.Queue = asyncio.Queue()

        def emit(event: dict) -> None:
            loop.call_soon_threadsafe(progress.put_nowait, event)

        pump = asyncio.create_task(self._pump_events(progress, stream))
        run_from = self.obs.tracer.now()
        failure: Exception | None = None
        outcome: tuple[dict, RunManifest] | None = None
        try:
            outcome = await asyncio.to_thread(
                execute_request, self.runtime, request, request_id, emit
            )
        except ValidationError as error:
            failure = error
        except Exception as error:  # noqa: BLE001 - contained per request
            _LOG.exception("request %s failed", request_id)
            failure = error
        finally:
            progress.put_nowait(_DONE)
            await pump
        run_until = self.obs.tracer.now()
        self.obs.tracer.complete(
            "request.run", "serve", run_from, run_until,
            request_id=request_id, kind=request.kind,
        )
        self.obs.metrics.histogram("serve.request_wall_s").observe(
            run_until - run_from
        )
        if failure is not None or outcome is None:
            self.requests_failed += 1
            self.obs.metrics.counter("serve.requests.failed").inc()
            code = 400 if isinstance(failure, ValidationError) else 500
            await stream.send(
                make_event("error", code=code, error=str(failure))
            )
            await stream.finish()
            return
        result_payload, manifest = outcome
        self.requests_completed += 1
        self.obs.metrics.counter("serve.requests.completed").inc()
        self._refresh_cache_metrics(manifest)
        for row in result_payload.get("schemes", ()):
            availability = row.get("availability")
            if availability is not None:
                self.obs.metrics.histogram("serve.on_time_fraction").observe(
                    float(availability)
                )
        manifest.metrics = {
            name: summary
            for name, summary in self.obs.metrics.summarize().items()
            if name.startswith("serve.")
        }
        await stream.send(make_event("result", data=result_payload))
        await stream.send(make_event("manifest", data=manifest.to_dict()))
        await stream.finish()

    async def _pump_events(
        self, progress: asyncio.Queue, stream: _EventStream
    ) -> None:
        """Forward worker-thread progress events to the client as they occur."""
        while True:
            event = await progress.get()
            if event is _DONE:
                return
            await stream.send(event)

    def _mirror_cache_gauges(self) -> None:
        """Mirror warm-state counters into gauges (loop thread only).

        ``serve.cache.*`` carries the server-lifetime context/prob/disk
        stats; ``exec.prob_cache.*`` repeats the probability-memo
        counters under the name scrapers already know from run
        manifests.  Called after each completed request and at every
        ``/v1/metrics`` scrape, so a scrape between requests still sees
        current values.
        """
        for name, value in self.runtime.cache_stats().items():
            if isinstance(value, bool):
                continue
            self.obs.metrics.gauge(f"serve.cache.{name}").set(float(value))
        for name, value in self.runtime.contexts.prob_counters().items():
            self.obs.metrics.gauge(f"exec.prob_cache.{name}").set(float(value))

    def _refresh_cache_metrics(self, manifest: RunManifest) -> None:
        """Mirror server-lifetime cache stats into ``serve.cache.*`` metrics.

        Runs on the event loop after each completed request, so the
        registry has a single writer and the manifest streamed to the
        client carries a consistent snapshot.
        """
        self._mirror_cache_gauges()
        serve_extra = manifest.extra.get("serve", {})
        shards_cached = serve_extra.get("shards_cached")
        if shards_cached:
            self.obs.metrics.counter("serve.cache.shards_cached").inc(
                shards_cached
            )


# -- entry points ------------------------------------------------------------------


async def serve_main(config: ServeConfig) -> int:
    """Blocking daemon entry point (the CLI's ``repro serve`` body)."""
    import signal

    server = EvalServer(config)
    try:
        await server.start()
    except OSError as error:
        if error.errno == errno.EADDRINUSE:
            raise ValueError(
                f"port {config.port} on {config.host} is already in use"
            ) from error
        raise
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.begin_shutdown)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    print(
        f"repro-serve listening on http://{config.host}:{server.port}/ "
        f"(max_active={config.max_active}, max_queue={config.max_queue}, "
        f"workers={config.workers})",
        flush=True,
    )
    await server.serve_until_stopped()
    print(
        f"drained and stopped: {server.requests_completed} completed, "
        f"{server.requests_failed} failed, {server.requests_rejected} rejected"
    )
    return 0


class ServerThread:
    """A daemon running on a private event loop in a background thread.

    The in-process counterpart of ``repro serve`` for tests and benches:
    ``start()`` returns the bound port, ``stop()`` performs the same
    graceful drain as SIGTERM.
    """

    def __init__(
        self, config: ServeConfig = ServeConfig(port=0), obs: Observability | None = None
    ) -> None:
        self.config = config
        self.obs = obs
        self.server: EvalServer | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None

    def start(self, timeout_s: float = 30.0) -> int:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise RuntimeError("server failed to start in time")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error}")
        assert self.server is not None
        return self.port

    @property
    def port(self) -> int:
        assert self.server is not None, "server not started"
        return self._port

    def stop(self, timeout_s: float = 60.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._thread.is_alive():
            server = self.server

            def _shutdown() -> None:
                if server is not None:
                    server.begin_shutdown()

            try:
                self._loop.call_soon_threadsafe(_shutdown)
            except RuntimeError:  # loop already closed
                pass
        self._thread.join(timeout_s)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # pragma: no cover - surfaced in start()
            if not self._ready.is_set():
                self._error = error
                self._ready.set()
            else:
                raise

    async def _main(self) -> None:
        server = EvalServer(self.config, obs=self.obs)
        try:
            await server.start()
        except BaseException as error:
            self._error = error
            self._ready.set()
            return
        self.server = server
        self._port = server.port
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await server.serve_until_stopped()
