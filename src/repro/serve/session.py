"""One served request, executed end to end in a worker thread.

``execute_request`` dispatches a validated request against the shared
:class:`~repro.serve.state.ServeRuntime` and returns ``(result payload,
run manifest)``.  It runs inside ``asyncio.to_thread``; the event loop
passes an ``emit`` callback for streaming ``progress`` events back to
the client while the work is still running.

Telemetry scoping: every request runs under its own
:func:`repro.exec.telemetry.telemetry_session`, so the exec counters in
its manifest cover exactly the engine invocations this request
triggered -- concurrently running requests never bleed into each
other's ``session_totals``.  (``asyncio.to_thread`` copies the caller's
context, but the session is entered *inside* the thread here, which
scopes it regardless of how the thread was spawned.)

Bitwise equivalence: the evaluation path is the execution engine's
(`run_replay_parallel`), fed with a warm shard context and the shared
disk cache; both layers preserve exact equality with a cold serial
replay, so serving changes latency, never results.
"""

from __future__ import annotations

from typing import Callable

from repro.exec.engine import run_replay_parallel
from repro.exec.telemetry import telemetry_session
from repro.netmodel.scenarios import WEEK_S, generate_timeline
from repro.netmodel.presets import preset_scenario
from repro.netmodel.topology import ServiceSpec
from repro.obs import RunManifest, topology_fingerprint
from repro.routing.registry import STANDARD_SCHEME_NAMES, make_policy
from repro.serve.schema import (
    ChaosRequest,
    ClassifyRequest,
    EvaluateRequest,
    Request,
    make_event,
)
from repro.serve.state import ServeRuntime
from repro.simulation import kernel
from repro.simulation.results import ReplayConfig
from repro.util.validation import fail, require

__all__ = ["execute_request"]

Emit = Callable[[dict], None]


def _progress(emit: Emit, phase: str, **detail: object) -> None:
    emit(make_event("progress", phase=phase, **detail))


def execute_request(
    runtime: ServeRuntime, request: Request, request_id: str, emit: Emit
) -> tuple[dict, RunManifest]:
    """Run one request to completion; returns (result payload, manifest)."""
    if isinstance(request, EvaluateRequest):
        return _run_evaluate(runtime, request, request_id, emit)
    if isinstance(request, ClassifyRequest):
        return _run_classify(runtime, request, request_id, emit)
    if isinstance(request, ChaosRequest):
        return _run_chaos(runtime, request, request_id, emit)
    fail(f"unsupported request kind {type(request).__name__}")


# -- evaluate ---------------------------------------------------------------------


def _run_evaluate(
    runtime: ServeRuntime, request: EvaluateRequest, request_id: str, emit: Emit
) -> tuple[dict, RunManifest]:
    workload = runtime.workload(
        request.topology_family, request.topology_size, request.topology_seed
    )
    topology = workload.topology
    schemes = tuple(request.schemes or STANDARD_SCHEME_NAMES)
    for scheme in schemes:
        make_policy(scheme)  # unknown names fail before any work
    flows = workload.select_flows(request.flows)
    service = ServiceSpec(deadline_ms=request.deadline_ms)
    config = ReplayConfig(detection_delay_s=request.detection_delay_s)

    if request.scenario_family is not None:
        from repro.scenarios import compile_family

        scenario_seed = (
            request.seed
            if request.scenario_seed is None
            else request.scenario_seed
        )
        _progress(
            emit,
            "generate-trace",
            weeks=request.weeks,
            scenario_family=request.scenario_family,
            seed=scenario_seed,
        )
        compiled = compile_family(
            topology,
            request.scenario_family,
            seed=scenario_seed,
            duration_s=request.weeks * WEEK_S,
        )
        events, timeline = list(compiled.events), compiled.timeline()
    else:
        _progress(emit, "generate-trace", weeks=request.weeks, seed=request.seed)
        scenario = preset_scenario(
            request.preset, duration_s=request.weeks * WEEK_S
        )
        events, timeline = generate_timeline(
            topology, scenario, seed=request.seed
        )

    context, context_warm = runtime.contexts.get(
        topology, timeline, service, config
    )
    workers = min(request.workers, runtime.worker_budget)
    _progress(
        emit,
        "replay",
        events=len(events),
        schemes=list(schemes),
        flows=len(flows),
        workers=workers,
        context_warm=context_warm,
    )
    profiler = None
    if request.profile:
        from repro.obs.profile import SamplingProfiler

        # Created inside the worker thread running this request, so the
        # profiler targets exactly this request's execution.
        profiler = SamplingProfiler().start()
    try:
        with telemetry_session(f"serve/{request_id}") as session:
            result, telemetry = run_replay_parallel(
                topology,
                timeline,
                flows,
                service,
                schemes,
                config,
                max_workers=workers,
                time_shards=request.time_shards,
                use_cache=request.use_cache and runtime.result_cache is not None,
                cache=runtime.result_cache if request.use_cache else None,
                label=f"serve {request_id}",
                context=context,
            )
    finally:
        if profiler is not None:
            profiler.stop()
    require(
        any(totals.duration_s > 0.0 for totals in result.all_totals()),
        "replay produced zero accumulation windows -- the trace is empty "
        "or degenerate; nothing to evaluate",
    )
    payload = {
        "events": len(events),
        "duration_s": timeline.duration_s,
        "schemes": [
            {
                "scheme": totals.scheme,
                "flows": totals.flows,
                "duration_s": totals.duration_s,
                "unavailable_s": totals.unavailable_s,
                "lost_s": totals.lost_s,
                "late_s": totals.late_s,
                "availability": totals.availability,
                "average_cost_messages": totals.average_cost_messages,
            }
            for totals in result.all_totals()
        ],
        "pairs": [
            {
                "scheme": stats.scheme,
                "flow": stats.flow.name,
                "duration_s": stats.duration_s,
                "unavailable_s": stats.unavailable_s,
                "lost_s": stats.lost_s,
                "late_s": stats.late_s,
                "message_seconds": stats.message_seconds,
                "decision_changes": stats.decision_changes,
            }
            for stats in result
        ],
    }
    totals = session.totals()
    extra: dict = {
        "serve": {
            "request_id": request_id,
            "kind": request.kind,
            "topology": workload.label,
            "context_warm": context_warm,
            "workers": workers,
            "shards_cached": telemetry.shards_cached,
        },
        "kernel": kernel.describe(),
    }
    if profiler is not None:
        extra["profile"] = profiler.report()
    manifest = RunManifest(
        label="serve evaluate",
        seed=request.seed,
        schemes=schemes,
        flows=tuple(flow.name for flow in flows),
        topology=topology_fingerprint(topology),
        duration_s=timeline.duration_s,
        exec=totals.to_dict() if totals is not None else None,
        extra=extra,
    )
    return payload, manifest


# -- classify ---------------------------------------------------------------------


def _run_classify(
    runtime: ServeRuntime, request: ClassifyRequest, request_id: str, emit: Emit
) -> tuple[dict, RunManifest]:
    from collections import Counter

    from repro.analysis.classify import (
        classification_distribution,
        classify_events_for_flows,
    )
    from repro.netmodel.scenarios import generate_events

    topology = runtime.topology
    flows = runtime.select_flows(None)
    _progress(emit, "generate-trace", weeks=request.weeks, seed=request.seed)
    scenario = preset_scenario(
        request.preset, duration_s=request.weeks * WEEK_S
    )
    events = generate_events(topology, scenario, seed=request.seed)
    _progress(emit, "classify", events=len(events))
    problems = classify_events_for_flows(
        topology, flows, events, request.deadline_ms
    )
    counts = Counter(problem.category for problem in problems)
    distribution = classification_distribution(problems)
    payload = {
        "events": len(events),
        "problems": len(problems),
        "distribution": dict(distribution),
        "counts": dict(counts),
    }
    manifest = RunManifest(
        label="serve classify",
        seed=request.seed,
        flows=tuple(flow.name for flow in flows),
        topology=topology_fingerprint(topology),
        duration_s=scenario.duration_s,
        extra={"serve": {"request_id": request_id, "kind": request.kind}},
    )
    return payload, manifest


# -- chaos ------------------------------------------------------------------------


def _run_chaos(
    runtime: ServeRuntime, request: ChaosRequest, request_id: str, emit: Emit
) -> tuple[dict, RunManifest]:
    from repro.chaos import ChaosSpec, generate_fault_schedule
    from repro.netmodel.conditions import ConditionTimeline
    from repro.overlay.harness import build_overlay

    workload = runtime.workload(
        request.topology_family, request.topology_size, request.topology_seed
    )
    topology = workload.topology
    for scheme in request.schemes:
        make_policy(scheme)  # unknown names fail before the run
    flows = workload.select_flows(request.flows, default=workload.flows[:2])
    service = ServiceSpec(
        deadline_ms=request.deadline_ms,
        send_interval_ms=request.send_interval_ms,
    )
    protected = frozenset(
        endpoint
        for flow in flows
        for endpoint in (flow.source, flow.destination)
    )
    compiled = None
    if request.scenario_family is not None:
        from repro.scenarios import compile_family

        scenario_seed = (
            request.seed
            if request.scenario_seed is None
            else request.scenario_seed
        )
        compiled = compile_family(
            topology,
            request.scenario_family,
            seed=scenario_seed,
            duration_s=request.duration_s,
        )
        schedule = compiled.fault_schedule()
    else:
        spec = ChaosSpec(
            duration_s=request.duration_s,
            crashes=request.crashes,
            blackholes=request.blackholes,
            partitions=request.partitions,
            stalls=request.stalls,
            message_fault_windows=request.message_windows,
            protected_nodes=protected,
        )
        schedule = generate_fault_schedule(
            topology,
            spec,
            seed=request.seed,
            flows=tuple(flow.name for flow in flows),
        )
    rows = []
    total_violations = 0
    violation_details: list[dict] = []
    for scheme in request.schemes:
        _progress(
            emit,
            "chaos",
            scheme=scheme,
            faults=len(schedule),
            schedule=schedule.fingerprint(),
        )
        if compiled is not None:
            # Same-world contract: the overlay observes the family's
            # compiled conditions while the injector replays its derived
            # fault schedule -- both sides of one description.
            timeline = compiled.timeline(horizon_s=request.duration_s + 1.0)
        else:
            timeline = ConditionTimeline(topology, request.duration_s + 1.0)
        harness = build_overlay(
            topology, timeline, flows, service, scheme, seed=request.seed
        )
        harness.start()
        harness.run(request.duration_s, faults=schedule)
        harness.stop_traffic()
        harness.invariants.check_convergence()
        violations = harness.invariants.violations
        total_violations += len(violations)
        for violation in violations:
            violation_details.append(
                {
                    "scheme": scheme,
                    "at_s": violation.at_s,
                    "invariant": violation.invariant,
                    "detail": violation.detail,
                }
            )
        for flow in flows:
            report = harness.reports[flow.name]
            rows.append(
                {
                    "scheme": scheme,
                    "flow": flow.name,
                    "sent": report.sent,
                    "on_time": report.on_time,
                    "on_time_fraction": report.on_time_fraction,
                    "violations": len(violations),
                }
            )
    payload = {
        "schedule": schedule.fingerprint(),
        "faults": len(schedule),
        "rows": rows,
        "violations": total_violations,
        "violation_details": violation_details,
    }
    manifest = RunManifest(
        label="serve chaos",
        seed=request.seed,
        schemes=tuple(request.schemes),
        flows=tuple(flow.name for flow in flows),
        topology=topology_fingerprint(topology),
        duration_s=request.duration_s,
        extra={
            "serve": {"request_id": request_id, "kind": request.kind},
            "schedule": schedule.fingerprint(),
            "faults": len(schedule),
            "violations": total_violations,
        },
    )
    return payload, manifest
