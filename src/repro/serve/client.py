"""Client for the evaluation daemon (``repro client`` under the hood).

A thin ``http.client`` wrapper speaking the :mod:`repro.serve.schema`
protocol: ``submit`` POSTs one request document and yields the chunked
JSONL event stream as parsed dicts; ``status`` and ``shutdown`` are
single JSON round-trips.

Failure mapping keeps CLI errors one-line: a connection refusal becomes
``ValidationError("server unreachable ...")``, an admission rejection
becomes :class:`ServerRejected` (so callers can surface the
``retry_after_s`` hint), and any HTTP error status with an ``error``
event body becomes :class:`ServerError` carrying that one-line text.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Iterator

from repro.serve.schema import Request, request_to_payload
from repro.util.validation import ValidationError

__all__ = ["ServeClient", "ServerError", "ServerRejected"]


class ServerError(Exception):
    """The server answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServerRejected(ServerError):
    """Admission control turned the request away (429/503)."""

    def __init__(
        self, status: int, reason: str, retry_after_s: float | None
    ) -> None:
        super().__init__(status, reason)
        self.reason = reason
        self.retry_after_s = retry_after_s


class ServeClient:
    """One server endpoint; each call opens a fresh connection."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8787, timeout_s: float = 600.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- plumbing --------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            connection.connect()
        except (ConnectionRefusedError, socket.gaierror, OSError) as error:
            connection.close()
            raise ValidationError(
                f"server unreachable at {self.host}:{self.port} "
                f"(is `repro serve` running?): {error}"
            ) from error
        return connection

    @staticmethod
    def _read_json(response: http.client.HTTPResponse) -> dict:
        try:
            return json.loads(response.read().decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServerError(
                response.status, f"malformed server response: {error}"
            ) from error

    @classmethod
    def _raise_for_status(
        cls, response: http.client.HTTPResponse
    ) -> None:
        if response.status < 400:
            return
        payload = cls._read_json(response)
        if payload.get("event") == "rejected":
            retry_after = payload.get("retry_after_s")
            raise ServerRejected(
                response.status,
                str(payload.get("reason", "rejected")),
                float(retry_after) if retry_after is not None else None,
            )
        raise ServerError(
            response.status,
            str(payload.get("error", f"server returned {response.status}")),
        )

    # -- endpoints -------------------------------------------------------------

    def status(self) -> dict:
        """One ``GET /v1/status`` round-trip."""
        connection = self._connect()
        try:
            connection.request("GET", "/v1/status")
            response = connection.getresponse()
            self._raise_for_status(response)
            return self._read_json(response)
        finally:
            connection.close()

    def metrics(self) -> str:
        """One ``GET /v1/metrics`` round-trip (Prometheus text format)."""
        connection = self._connect()
        try:
            connection.request("GET", "/v1/metrics")
            response = connection.getresponse()
            self._raise_for_status(response)
            try:
                return response.read().decode("utf-8")
            except UnicodeDecodeError as error:
                raise ServerError(
                    response.status, f"malformed metrics body: {error}"
                ) from error
        finally:
            connection.close()

    def health(self) -> dict:
        """One ``GET /v1/health`` round-trip.

        A draining server answers 503 with the same JSON shape; that is
        health *data*, not a failure, so it is returned rather than
        raised (unlike every other endpoint).
        """
        connection = self._connect()
        try:
            connection.request("GET", "/v1/health")
            response = connection.getresponse()
            if response.status not in (200, 503):
                self._raise_for_status(response)
            return self._read_json(response)
        finally:
            connection.close()

    def shutdown(self) -> dict:
        """Ask the server to drain and stop; returns its final counters."""
        connection = self._connect()
        try:
            connection.request("POST", "/v1/shutdown")
            response = connection.getresponse()
            self._raise_for_status(response)
            return self._read_json(response)
        finally:
            connection.close()

    def submit(self, request: Request | dict) -> Iterator[dict]:
        """Submit one request and yield its event stream as dicts.

        ``request`` may be a typed request object or an already-shaped
        wire payload (a dict with ``version``/``kind``).  Raises
        :class:`ServerRejected` on 429/503 and :class:`ServerError` on
        any other error status; events after acceptance (including a
        terminal ``error`` event) are yielded to the caller as data.
        """
        payload = (
            request if isinstance(request, dict) else request_to_payload(request)
        )
        body = json.dumps(payload).encode("utf-8")
        connection = self._connect()
        try:
            connection.request(
                "POST",
                "/v1/submit",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            self._raise_for_status(response)
            # http.client strips the chunked framing; readline() yields
            # exactly the JSONL lines the server wrote.
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as error:
                    raise ServerError(
                        response.status, f"malformed event line: {error}"
                    ) from error
        finally:
            connection.close()

    def run(self, request: Request | dict) -> tuple[dict, dict, list[dict]]:
        """Submit and collect: returns (result, manifest, progress events).

        Raises :class:`ServerError` if the stream ends in an ``error``
        event or without a result/manifest pair.
        """
        result: dict | None = None
        manifest: dict | None = None
        progress: list[dict] = []
        for event in self.submit(request):
            name = event.get("event")
            if name == "result":
                result = event.get("data", {})
            elif name == "manifest":
                manifest = event.get("data", {})
            elif name == "error":
                raise ServerError(
                    int(event.get("code", 500)),
                    str(event.get("error", "request failed")),
                )
            elif name == "progress":
                progress.append(event)
        if result is None or manifest is None:
            raise ServerError(500, "stream ended before result and manifest")
        return result, manifest, progress
