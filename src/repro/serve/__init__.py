"""Evaluation-as-a-service: a warm daemon in front of the exec engine.

``repro serve`` starts a long-lived localhost HTTP daemon that accepts
evaluation, classification, and chaos requests as JSON and streams
results back as JSONL events.  What the daemon buys over the cold CLI
is *warmth*: the probability memo, the mask-classification cache, and
the content-addressed exec shard cache all survive between requests, so
repeated or overlapping workloads skip straight to cached work -- while
the execution engine's exact-equivalence contract keeps every served
result bitwise identical to a cold serial run.

Layering (each module depends only on those above it):

* :mod:`repro.serve.schema` -- versioned wire protocol (requests, events);
* :mod:`repro.serve.state` -- server-lifetime warm state and counters;
* :mod:`repro.serve.scheduler` -- admission control and graceful drain;
* :mod:`repro.serve.session` -- one request, executed in a worker thread;
* :mod:`repro.serve.server` -- the asyncio HTTP daemon itself;
* :mod:`repro.serve.client` -- the matching ``repro client`` library.
"""

from repro.serve.client import ServeClient, ServerError, ServerRejected
from repro.serve.schema import (
    PROTOCOL_VERSION,
    ChaosRequest,
    ClassifyRequest,
    EvaluateRequest,
    Request,
    parse_request,
    request_to_payload,
)
from repro.serve.scheduler import RequestRejected, Scheduler
from repro.serve.server import (
    DEFAULT_PORT,
    EvalServer,
    ServeConfig,
    ServerThread,
    serve_main,
)
from repro.serve.state import ContextCache, ServeRuntime

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_PORT",
    "ChaosRequest",
    "ClassifyRequest",
    "ContextCache",
    "EvalServer",
    "EvaluateRequest",
    "Request",
    "RequestRejected",
    "Scheduler",
    "ServeClient",
    "ServeConfig",
    "ServeRuntime",
    "ServerError",
    "ServerRejected",
    "ServerThread",
    "parse_request",
    "request_to_payload",
    "serve_main",
]
