"""The ``repro.serve`` wire schema: versioned requests and stream events.

A request is one JSON object.  Every request carries ``version`` (the
protocol version, currently 1) and ``kind`` (``evaluate`` /
``classify`` / ``chaos``); the remaining fields are kind-specific and
strictly validated -- unknown fields, wrong types, and out-of-range
values are rejected with a one-line :class:`ValidationError` before any
work is admitted, so a malformed request never occupies a worker slot.

The response to a submitted request is a stream of JSONL *events*
(chunked HTTP), each one JSON object with an ``event`` field:

* ``accepted`` -- the request passed admission control (carries the
  request id and the queue depth observed at admission);
* ``progress`` -- a phase boundary (``generate-trace``, ``replay``,
  ``classify``, ``chaos``...), with phase-specific detail;
* ``result`` -- the kind-specific result payload (tables as data);
* ``manifest`` -- the final record: the request's
  :class:`repro.obs.RunManifest` as JSON, exec telemetry and
  ``serve.cache.*`` counters included;
* ``error`` -- the request failed (carries ``code`` and one-line
  ``error`` text); terminal like ``manifest``.

Rejected requests never enter the stream: admission control answers
with HTTP 429 (queue full) or 503 (draining) and a single JSON body
``{"event": "rejected", "reason": ..., "retry_after_s": ...}``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Mapping

from repro.util.validation import ValidationError, require

__all__ = [
    "PROTOCOL_VERSION",
    "ChaosRequest",
    "ClassifyRequest",
    "EvaluateRequest",
    "Request",
    "make_event",
    "parse_request",
    "request_to_payload",
]

#: Bumped whenever a request or event field changes meaning.
PROTOCOL_VERSION = 1

#: Accepted ``kind`` values, in documentation order.
REQUEST_KINDS = ("evaluate", "classify", "chaos")


def _check_str(value: object, name: str) -> str:
    require(isinstance(value, str), f"{name} must be a string, got {value!r}")
    return value  # type: ignore[return-value]


def _check_bool(value: object, name: str) -> bool:
    require(isinstance(value, bool), f"{name} must be a boolean, got {value!r}")
    return value  # type: ignore[return-value]


def _check_int(value: object, name: str, minimum: int | None = None) -> int:
    require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{name} must be an integer, got {value!r}",
    )
    if minimum is not None:
        require(value >= minimum, f"{name} must be >= {minimum}, got {value!r}")
    return value  # type: ignore[return-value]


def _check_float(
    value: object, name: str, minimum: float | None = None, positive: bool = False
) -> float:
    require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{name} must be a number, got {value!r}",
    )
    if positive:
        require(value > 0, f"{name} must be > 0, got {value!r}")
    elif minimum is not None:
        require(value >= minimum, f"{name} must be >= {minimum}, got {value!r}")
    return float(value)  # type: ignore[arg-type]


def _check_names(value: object, name: str) -> tuple[str, ...] | None:
    if value is None:
        return None
    require(
        isinstance(value, (list, tuple)) and bool(value),
        f"{name} must be a non-empty list of names, got {value!r}",
    )
    return tuple(_check_str(item, f"{name}[]") for item in value)  # type: ignore[union-attr]


def _check_scenario(family: object, seed: object) -> None:
    """Validate the scenario-family override fields shared by requests."""
    if family is not None:
        from repro.scenarios.registry import FAMILY_NAMES

        _check_str(family, "scenario_family")
        require(
            family in FAMILY_NAMES,
            f"unknown scenario family {family!r}; "
            f"known: {', '.join(FAMILY_NAMES)}",
        )
    if seed is not None:
        _check_int(seed, "scenario_seed")


def _check_topology(family: object, size: object, seed: object) -> None:
    """Validate the generated-topology override fields shared by requests.

    Name and size-envelope checks go through the :mod:`repro.topogen`
    registry -- the same path the CLI resolves against -- so a bad
    request is rejected at admission with the identical one-line error,
    before it can occupy a worker slot generating a topology.
    """
    from repro.topogen import REFERENCE_NAME
    from repro.topogen.registry import family_info

    if family is None or family == REFERENCE_NAME:
        if family is not None:
            _check_str(family, "topology_family")
        require(
            size is None and seed is None,
            "topology_size/topology_seed apply only to generator "
            "families; the reference topology is fixed",
        )
        return
    _check_str(family, "topology_family")
    info = family_info(family)  # unknown names fail with the registry error
    require(
        size is not None,
        f"topology_family {family!r} needs an explicit topology_size",
    )
    _check_int(size, "topology_size")
    require(
        info.min_size <= size <= info.max_size,  # type: ignore[operator]
        f"family {family!r} supports sizes "
        f"{info.min_size}..{info.max_size}, got {size!r}",
    )
    if seed is not None:
        _check_int(seed, "topology_seed")


@dataclass(frozen=True)
class EvaluateRequest:
    """Replay a generated trace under a scheme line-up (the E2 workload)."""

    weeks: float = 1.0
    seed: int = 7
    preset: str = "default"
    deadline_ms: float = 65.0
    detection_delay_s: float = 1.0
    time_shards: int = 1
    workers: int = 0
    schemes: tuple[str, ...] | None = None  # None = the standard six
    flows: tuple[str, ...] | None = None  # None = all 16 reference flows
    use_cache: bool = True
    profile: bool = False  # sample the replay; summary in the manifest
    # Scenario-family override: replay this adversarial family (compiled
    # at weeks * WEEK_S) instead of the preset generator.
    scenario_family: str | None = None
    scenario_seed: int | None = None  # None = the request seed
    # Generated-topology override (repro.topogen): replay on a generated
    # overlay instead of the 12-site reference.  Size is required with a
    # family; seed defaults to 0.
    topology_family: str | None = None
    topology_size: int | None = None
    topology_seed: int | None = None

    kind = "evaluate"

    def __post_init__(self) -> None:
        _check_float(self.weeks, "weeks", positive=True)
        _check_int(self.seed, "seed")
        _check_str(self.preset, "preset")
        _check_float(self.deadline_ms, "deadline_ms", positive=True)
        _check_float(self.detection_delay_s, "detection_delay_s", minimum=0.0)
        _check_int(self.time_shards, "time_shards", minimum=1)
        _check_int(self.workers, "workers", minimum=0)
        _check_names(self.schemes, "schemes")
        _check_names(self.flows, "flows")
        _check_bool(self.use_cache, "use_cache")
        _check_bool(self.profile, "profile")
        _check_scenario(self.scenario_family, self.scenario_seed)
        _check_topology(
            self.topology_family, self.topology_size, self.topology_seed
        )


@dataclass(frozen=True)
class ClassifyRequest:
    """Problem-classification distribution of a generated trace (E1)."""

    weeks: float = 1.0
    seed: int = 7
    preset: str = "default"
    deadline_ms: float = 65.0

    kind = "classify"

    def __post_init__(self) -> None:
        _check_float(self.weeks, "weeks", positive=True)
        _check_int(self.seed, "seed")
        _check_str(self.preset, "preset")
        _check_float(self.deadline_ms, "deadline_ms", positive=True)


@dataclass(frozen=True)
class ChaosRequest:
    """Run the live overlay under a seeded fault schedule (E19)."""

    seed: int = 7
    duration_s: float = 30.0
    schemes: tuple[str, ...] = ("targeted", "static-single")
    flows: tuple[str, ...] | None = None  # None = two representative flows
    crashes: int = 1
    blackholes: int = 1
    partitions: int = 0
    stalls: int = 0
    message_windows: int = 0
    deadline_ms: float = 65.0
    send_interval_ms: float = 50.0
    # Scenario-family override: drive the overlay with the family's
    # derived fault schedule + compiled timeline instead of a generated
    # ChaosSpec schedule.
    scenario_family: str | None = None
    scenario_seed: int | None = None  # None = the request seed
    # Generated-topology override, same contract as EvaluateRequest.
    topology_family: str | None = None
    topology_size: int | None = None
    topology_seed: int | None = None

    kind = "chaos"

    def __post_init__(self) -> None:
        _check_int(self.seed, "seed")
        _check_float(self.duration_s, "duration_s", positive=True)
        schemes = _check_names(self.schemes, "schemes")
        require(schemes is not None, "schemes must be a non-empty list")
        _check_names(self.flows, "flows")
        for field_name in (
            "crashes", "blackholes", "partitions", "stalls", "message_windows"
        ):
            _check_int(getattr(self, field_name), field_name, minimum=0)
        _check_float(self.deadline_ms, "deadline_ms", positive=True)
        _check_float(self.send_interval_ms, "send_interval_ms", positive=True)
        _check_scenario(self.scenario_family, self.scenario_seed)
        _check_topology(
            self.topology_family, self.topology_size, self.topology_seed
        )


Request = EvaluateRequest | ClassifyRequest | ChaosRequest

_REQUEST_TYPES: dict[str, type] = {
    "evaluate": EvaluateRequest,
    "classify": ClassifyRequest,
    "chaos": ChaosRequest,
}


def parse_request(payload: object) -> Request:
    """Validate one JSON request document into its typed form.

    Raises :class:`ValidationError` with a one-line message on any
    malformed input: wrong envelope, unsupported version, unknown kind,
    unknown fields, wrong types, out-of-range values.
    """
    require(
        isinstance(payload, Mapping),
        f"request must be a JSON object, got {type(payload).__name__}",
    )
    assert isinstance(payload, Mapping)
    version = payload.get("version")
    require(
        version == PROTOCOL_VERSION,
        f"unsupported protocol version {version!r} "
        f"(this server speaks version {PROTOCOL_VERSION})",
    )
    kind = payload.get("kind")
    require(
        kind in _REQUEST_TYPES,
        f"unknown request kind {kind!r}; known: {', '.join(REQUEST_KINDS)}",
    )
    request_type = _REQUEST_TYPES[kind]  # type: ignore[index]
    known = {field.name for field in fields(request_type)}
    body = {
        name: value
        for name, value in payload.items()
        if name not in ("version", "kind")
    }
    unknown = sorted(set(body) - known)
    require(
        not unknown,
        f"unknown field(s) for {kind}: {', '.join(unknown)}; "
        f"known: {', '.join(sorted(known))}",
    )
    # Wire lists become tuples so the dataclasses stay hashable/frozen.
    for name in ("schemes", "flows"):
        if isinstance(body.get(name), list):
            body[name] = tuple(body[name])
    try:
        return request_type(**body)
    except TypeError as error:
        raise ValidationError(f"malformed {kind} request: {error}") from error


def request_to_payload(request: Request) -> dict:
    """The JSON wire form of a typed request (what clients submit)."""
    payload: dict = {"version": PROTOCOL_VERSION, "kind": request.kind}
    for field in fields(request):
        value = getattr(request, field.name)
        if isinstance(value, tuple):
            value = list(value)
        payload[field.name] = value
    return payload


def make_event(event: str, **data: object) -> dict:
    """One response-stream event as a JSON-ready dict."""
    return {"event": event, **data}
