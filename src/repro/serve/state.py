"""Server-lifetime warm state: contexts, caches, and counters.

The point of serving evaluations from a daemon instead of a cold CLI
process is that the expensive per-trace state survives between requests:

* :class:`ContextCache` keeps :class:`~repro.exec.plan.ShardContext`
  objects -- the merged boundary list, per-boundary condition views, and
  the probability/mask-classification memo -- keyed by the execution
  engine's *context key* (topology + timeline + service + config), so a
  repeated or overlapping request reuses the warm memo instead of
  rebuilding it;
* one shared :class:`~repro.exec.cache.ResultCache` serves
  content-addressed shards across all requests;
* :class:`ServeRuntime` bundles the above with the reference topology
  and flow table so request sessions share a single source of truth.

Everything here is touched from request worker threads concurrently, so
the context cache is lock-protected and the probability memo inside each
context is itself thread-safe (one lock around lookup/insert/evict).
Keying contexts by the full context key is what keeps sharing bitwise
exact: two requests only share a memo when their deadline, detection
delay, and timeline are identical, and canonical-key sharing inside one
memo is exact by construction.
"""

from __future__ import annotations

import threading

from repro.core.graph import Topology
from repro.exec.cache import ResultCache
from repro.exec.hashing import context_key
from repro.exec.plan import ShardContext
from repro.netmodel.conditions import ConditionTimeline
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.simulation.results import ReplayConfig
from repro.topogen import Workload, resolve_workload
from repro.util.validation import require

__all__ = ["ContextCache", "ServeRuntime"]

#: Probability-memo counters aggregated across warm contexts into
#: ``serve.cache.prob_*`` metrics.
_PROB_COUNTER_NAMES = (
    "hits",
    "misses",
    "shared_hits",
    "mask_hits",
    "evictions",
    "canonical_evictions",
)


class ContextCache:
    """LRU of warm :class:`ShardContext` objects, keyed by context key.

    ``get`` returns ``(context, warm)`` where ``warm`` says whether the
    context (and therefore its probability memo) was already resident.
    Building a context is expensive (one delta walk over the whole
    trace), so it happens outside the lock; when two threads race to
    build the same key, the first stored entry wins and both callers
    share it.
    """

    def __init__(self, capacity: int = 4) -> None:
        require(capacity >= 1, f"context capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: dict[str, ShardContext] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(
        self,
        topology: Topology,
        timeline: ConditionTimeline,
        service: ServiceSpec,
        config: ReplayConfig,
    ) -> tuple[ShardContext, bool]:
        """The warm context for these inputs, building it on first use."""
        key = context_key(topology, timeline, service, config)
        with self._lock:
            resident = self._entries.pop(key, None)
            if resident is not None:
                self._entries[key] = resident  # most recently used
                self.hits += 1
                return resident, True
        built = ShardContext(topology, timeline, service, config)
        with self._lock:
            existing = self._entries.pop(key, None)
            resident = existing if existing is not None else built
            self._entries[key] = resident
            self.misses += 1
            while len(self._entries) > self.capacity:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
                self.evictions += 1
        return resident, existing is not None

    def counters(self) -> dict[str, int]:
        """Context-level counters plus entry count."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
            }

    def prob_counters(self) -> dict[str, int]:
        """Probability-memo counters summed across resident contexts.

        Server-lifetime view of the warm memos' health: entries evicted
        with their context drop out of the sums, which is the honest
        reading -- their warmth is gone too.
        """
        with self._lock:
            contexts = list(self._entries.values())
        totals = dict.fromkeys(_PROB_COUNTER_NAMES, 0)
        for context in contexts:
            snapshot = context.probability_cache.counters()
            for name in _PROB_COUNTER_NAMES:
                totals[name] += snapshot.get(name, 0)
        return totals


class ServeRuntime:
    """Everything a request session needs, shared across requests."""

    def __init__(
        self,
        *,
        worker_budget: int = 0,
        context_capacity: int = 4,
        cache_dir: str | None = None,
        use_disk_cache: bool = True,
    ) -> None:
        require(worker_budget >= 0, "worker budget must be >= 0")
        self.worker_budget = worker_budget
        self._reference = resolve_workload()
        self.topology = self._reference.topology
        self.flows = self._reference.flows
        self.contexts = ContextCache(context_capacity)
        self.result_cache = ResultCache(cache_dir) if use_disk_cache else None

    def workload(
        self,
        family: str | None = None,
        size: int | None = None,
        seed: int | None = None,
    ) -> Workload:
        """Resolve a request's topology override to (topology, flows).

        Goes through :func:`repro.topogen.resolve_workload` -- the same
        registry the CLI uses -- so generated topologies are memoised
        across requests and unknown names fail with the one-line registry
        error.  The exec-layer context key fingerprints the full node and
        link set, so warm contexts for different topologies never collide.
        """
        return resolve_workload(family, size, seed)

    def select_flows(
        self, names: tuple[str, ...] | None, default: tuple[FlowSpec, ...] | None = None
    ) -> list[FlowSpec]:
        """Resolve flow names against the reference table (one-line error)."""
        return self._reference.select_flows(names, default)

    def cache_stats(self) -> dict[str, object]:
        """Server-lifetime cache counters (the ``serve.cache.*`` source)."""
        stats: dict[str, object] = {
            f"context_{name}": value
            for name, value in self.contexts.counters().items()
        }
        for name, value in self.contexts.prob_counters().items():
            stats[f"prob_{name}"] = value
        stats["disk_cache"] = self.result_cache is not None
        return stats
