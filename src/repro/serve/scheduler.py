"""Admission control for the evaluation daemon.

The scheduler bounds how much work the daemon accepts: at most
``max_active`` requests run concurrently and at most ``max_queue`` more
may wait for a slot.  A request beyond that is rejected *immediately*
with a ``retry_after_s`` hint (HTTP 429 semantics) instead of piling up
latency for everyone -- the reliable-service framing of the paper
applied to the evaluation plane: predictable service for admitted work
beats best-effort service for unbounded work.

``drain()`` implements graceful shutdown (SIGTERM): new submissions are
rejected with 503 semantics while everything already admitted -- active
*and* queued -- runs to completion; the coroutine returns once the
scheduler is idle.

All state lives on the event loop (no locks); request bodies execute in
worker threads, but admission, release, and the queue-depth gauge are
loop-only transitions.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from contextlib import asynccontextmanager
from typing import AsyncIterator

from repro.obs import Observability
from repro.util.validation import require

__all__ = ["RequestRejected", "Scheduler"]

#: retry-after fallback before any request has completed (seconds).
_DEFAULT_WALL_GUESS_S = 1.0


class RequestRejected(Exception):
    """Admission control turned a request away.

    ``status`` is the HTTP status to answer with (429 queue-full, 503
    draining); ``retry_after_s`` is the client's back-off hint.
    """

    def __init__(self, reason: str, retry_after_s: float, status: int) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry_after_s = retry_after_s
        self.status = status


class Scheduler:
    """Bounded concurrency + bounded queue + graceful drain."""

    def __init__(
        self,
        max_active: int = 2,
        max_queue: int = 8,
        obs: Observability | None = None,
    ) -> None:
        require(max_active >= 1, f"max_active must be >= 1, got {max_active}")
        require(max_queue >= 0, f"max_queue must be >= 0, got {max_queue}")
        self.max_active = max_active
        self.max_queue = max_queue
        self.active = 0
        self.queued = 0
        self.draining = False
        self._semaphore = asyncio.Semaphore(max_active)
        self._idle = asyncio.Event()
        self._idle.set()
        self._recent_wall_s: deque[float] = deque(maxlen=16)
        self._recent_wait_s: deque[float] = deque(maxlen=16)
        self._obs = obs

    # -- admission -------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Requests currently admitted (active + queued)."""
        return self.active + self.queued

    def retry_after_s(self) -> float:
        """Back-off hint grounded in what admitted requests experienced.

        The model term predicts drain time (recent mean wall time times
        the number of queue waves ahead of a new arrival); the observed
        term is the mean queue wait recently *measured* at admission.
        The hint is the larger of the two, so a backlog the model
        underestimates (e.g. long-tailed requests) still produces an
        honest back-off.
        """
        if self._recent_wall_s:
            mean_wall = sum(self._recent_wall_s) / len(self._recent_wall_s)
        else:
            mean_wall = _DEFAULT_WALL_GUESS_S
        waves = (self.depth // self.max_active) + 1
        hint = mean_wall * waves
        if self._recent_wait_s:
            observed = sum(self._recent_wait_s) / len(self._recent_wait_s)
            hint = max(hint, observed)
        return round(max(0.1, hint), 3)

    @asynccontextmanager
    async def slot(self) -> AsyncIterator[None]:
        """Admit one request and hold a run slot for the ``with`` body.

        Raises :class:`RequestRejected` without queueing when the server
        is draining or the queue is full.
        """
        if self.draining:
            raise RequestRejected(
                "server is draining", self.retry_after_s(), status=503
            )
        if self.depth >= self.max_active + self.max_queue:
            raise RequestRejected(
                f"queue full ({self.queued} waiting, {self.active} active)",
                self.retry_after_s(),
                status=429,
            )
        self.queued += 1
        self._idle.clear()
        self._note_depth()
        enqueued = time.perf_counter()
        try:
            await self._semaphore.acquire()
        except BaseException:
            self.queued -= 1
            self._note_depth()
            self._check_idle()
            raise
        waited = time.perf_counter() - enqueued
        self.queued -= 1
        self.active += 1
        self._recent_wait_s.append(waited)
        if self._obs is not None:
            self._obs.metrics.histogram("serve.queue_wait_s").observe(waited)
        self._note_depth()
        started = time.perf_counter()
        try:
            yield
        finally:
            self.active -= 1
            self._semaphore.release()
            self._recent_wall_s.append(time.perf_counter() - started)
            self._note_depth()
            self._check_idle()

    # -- drain -----------------------------------------------------------------

    async def drain(self) -> None:
        """Stop admitting; return once all admitted work has finished."""
        self.draining = True
        if self.depth == 0:
            self._idle.set()
        await self._idle.wait()

    # -- internals -------------------------------------------------------------

    def _check_idle(self) -> None:
        if self.depth == 0:
            self._idle.set()

    def _note_depth(self) -> None:
        if self._obs is not None:
            self._obs.metrics.gauge("serve.queue_depth").set(self.queued)
            self._obs.metrics.gauge("serve.active").set(self.active)
