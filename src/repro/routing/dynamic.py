"""Dynamic path-selection schemes.

``dynamic-single`` re-selects the lowest-latency path avoiding links it
believes are degraded -- the behaviour of a responsive link-state routing
protocol on the overlay.  ``dynamic-two-disjoint`` does the same for a
pair of node-disjoint paths.

Both fall back gracefully when avoiding every degraded link would
disconnect (or de-pair) the flow: degraded links are then re-admitted with
a loss-proportional latency surcharge, so the least-lossy unavoidable
option is used rather than giving up.

Decisions are cached on the observed degraded-edge fingerprint: replay
engines call ``update`` at every segment boundary, and most boundaries do
not change the relevant view.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.algorithms import NoPathError, disjoint_paths, shortest_path
from repro.core.dgraph import DisseminationGraph
from repro.core.graph import Edge
from repro.netmodel.conditions import LinkState
from repro.routing.base import (
    RoutingPolicy,
    degraded_edge_set,
    observed_adjacency,
)
from repro.util.validation import require, require_probability

__all__ = ["DynamicSinglePathPolicy", "DynamicTwoDisjointPolicy"]


class _DynamicPolicyBase(RoutingPolicy):
    """Shared caching and fingerprinting for the dynamic schemes."""

    def __init__(self, loss_threshold: float = 0.02) -> None:
        super().__init__()
        require_probability(loss_threshold, "loss_threshold")
        self.loss_threshold = loss_threshold
        self._cache_key: object = None
        self._cache_graph: DisseminationGraph | None = None
        self._relevant_edges: frozenset[Edge] = frozenset()

    def reset(self) -> None:
        """Clear temporal and cache state for a fresh replay."""
        super().reset()
        self._cache_key = None
        self._cache_graph = None
        self._relevant_edges = frozenset()

    def _fingerprint(self, observed: Mapping[Edge, LinkState]) -> object:
        """What the decision depends on: degraded set + latency inflations."""
        degraded = degraded_edge_set(observed, self.loss_threshold)
        inflations = tuple(
            sorted(
                (edge, state.extra_latency_ms)
                for edge, state in observed.items()
                if state.extra_latency_ms > 0.0
            )
        )
        return (degraded, inflations)

    def _delta_is_irrelevant(
        self, changed: frozenset[Edge], observed: Mapping[Edge, LinkState]
    ) -> bool:
        """Can the changed edges possibly alter the fingerprint?

        The fingerprint reads an edge only when it is degraded (loss at or
        above the threshold) or latency-inflated.  A changed edge that was
        in neither group of the cached fingerprint and still is in neither
        contributes nothing before or after -- so the fingerprint, and
        therefore the decision, is unchanged.
        """
        if changed & self._relevant_edges:
            return False
        for edge in changed:
            state = observed.get(edge)
            if state is not None and (
                state.loss_rate >= self.loss_threshold
                or state.extra_latency_ms > 0.0
            ):
                return False
        return True

    def _decide(
        self, now_s: float, observed: Mapping[Edge, LinkState]
    ) -> DisseminationGraph:
        changed = self._observed_changed
        if (
            changed is not None
            and self._cache_graph is not None
            and self._delta_is_irrelevant(changed, observed)
        ):
            return self._cache_graph
        key = self._fingerprint(observed)
        if key != self._cache_key or self._cache_graph is None:
            self._cache_graph = self._recompute(observed, key[0])
            self._cache_key = key
            self._relevant_edges = key[0].union(
                edge for edge, _extra in key[1]
            )
        return self._cache_graph

    def _recompute(
        self, observed: Mapping[Edge, LinkState], degraded: frozenset[Edge]
    ) -> DisseminationGraph:
        raise NotImplementedError


class DynamicSinglePathPolicy(_DynamicPolicyBase):
    """Lowest-latency single path avoiding believed-degraded links."""

    name = "dynamic-single"

    def _recompute(
        self, observed: Mapping[Edge, LinkState], degraded: frozenset[Edge]
    ) -> DisseminationGraph:
        source, destination = self.flow.source, self.flow.destination
        adjacency = observed_adjacency(self.topology, observed, exclude=degraded)
        try:
            path, _latency = shortest_path(adjacency, source, destination)
        except NoPathError:
            # Unavoidable loss: pick the least-lossy path instead.
            penalized = observed_adjacency(
                self.topology, observed, penalize_loss=True
            )
            path, _latency = shortest_path(penalized, source, destination)
        return DisseminationGraph.from_path(path, name=self.name)


class DynamicTwoDisjointPolicy(_DynamicPolicyBase):
    """Re-selected pair of node-disjoint paths avoiding degraded links."""

    name = "dynamic-two-disjoint"

    def __init__(self, loss_threshold: float = 0.02, k: int = 2) -> None:
        super().__init__(loss_threshold)
        require(k >= 1, f"k must be >= 1, got {k}")
        self.k = k
        if k != 2:
            words = {3: "three"}
            self.name = f"dynamic-{words.get(k, k)}-disjoint"

    def _recompute(
        self, observed: Mapping[Edge, LinkState], degraded: frozenset[Edge]
    ) -> DisseminationGraph:
        source, destination = self.flow.source, self.flow.destination
        adjacency = observed_adjacency(self.topology, observed, exclude=degraded)
        paths = disjoint_paths(adjacency, source, destination, k=self.k)
        if len(paths) < self.k:
            # Not enough clean disjoint paths: re-admit lossy links with a
            # surcharge so the pairing maximises cleanliness first.
            penalized = observed_adjacency(
                self.topology, observed, penalize_loss=True
            )
            paths = disjoint_paths(penalized, source, destination, k=self.k)
        if not paths:  # pragma: no cover - topology is connected by contract
            raise NoPathError(source, destination)
        return DisseminationGraph.from_paths(paths, name=self.name)
