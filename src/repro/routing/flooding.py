"""Time-constrained flooding: the optimal (and most expensive) scheme.

Floods every packet on every edge that could still contribute an on-time
copy.  By construction, if *any* dissemination graph could deliver a
packet within the deadline, this one does -- so its unavailability is the
lower bound every other scheme's "gap coverage" is measured against.
The graph depends only on base latencies and the deadline, so it is
static at attach time.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.builders import time_constrained_flooding_graph
from repro.core.dgraph import DisseminationGraph
from repro.core.graph import Edge
from repro.netmodel.conditions import LinkState
from repro.routing.base import RoutingPolicy

__all__ = ["TimeConstrainedFloodingPolicy"]


class TimeConstrainedFloodingPolicy(RoutingPolicy):
    """Flood on all edges usable within the service deadline."""

    name = "flooding"
    is_dynamic = False

    def __init__(self, deadline_ms: float | None = None) -> None:
        """``deadline_ms`` defaults to the attached service's deadline."""
        super().__init__()
        self._deadline_override_ms = deadline_ms
        self._graph: DisseminationGraph | None = None

    def _on_attach(self) -> None:
        deadline = (
            self._deadline_override_ms
            if self._deadline_override_ms is not None
            else self.service.deadline_ms
        )
        self._graph = time_constrained_flooding_graph(
            self.topology,
            self.flow.source,
            self.flow.destination,
            deadline_ms=deadline,
            name=self.name,
        )

    def _decide(
        self, now_s: float, observed: Mapping[Edge, LinkState]
    ) -> DisseminationGraph:
        assert self._graph is not None
        return self._graph
