"""Factory for the paper's standard scheme line-up.

The evaluation compares six schemes; benches and the CLI construct them by
name through this registry so every entry point agrees on parameters.
"""

from __future__ import annotations

from typing import Callable

from repro.routing.base import RoutingPolicy
from repro.routing.dynamic import DynamicSinglePathPolicy, DynamicTwoDisjointPolicy
from repro.routing.flooding import TimeConstrainedFloodingPolicy
from repro.routing.static import StaticKDisjointPolicy, StaticSinglePathPolicy
from repro.routing.targeted import TargetedRedundancyPolicy
from repro.util.validation import require

__all__ = [
    "EXTENDED_SCHEME_NAMES",
    "STANDARD_SCHEME_NAMES",
    "make_policy",
    "standard_policies",
]

_FACTORIES: dict[str, Callable[[], RoutingPolicy]] = {
    "static-single": StaticSinglePathPolicy,
    "dynamic-single": DynamicSinglePathPolicy,
    "static-two-disjoint": lambda: StaticKDisjointPolicy(k=2),
    "dynamic-two-disjoint": DynamicTwoDisjointPolicy,
    "targeted": TargetedRedundancyPolicy,
    "flooding": TimeConstrainedFloodingPolicy,
    # Extended spectrum (beyond the paper's six): more disjoint paths --
    # the "just add another path" alternative the targeted approach is
    # measured against in the redundancy-spectrum ablation.
    "static-three-disjoint": lambda: StaticKDisjointPolicy(k=3),
    "dynamic-three-disjoint": lambda: DynamicTwoDisjointPolicy(k=3),
}

#: Scheme names in the paper's presentation order (worst to best).
STANDARD_SCHEME_NAMES: tuple[str, ...] = (
    "static-single",
    "dynamic-single",
    "static-two-disjoint",
    "dynamic-two-disjoint",
    "targeted",
    "flooding",
)

#: Additional schemes available beyond the paper's line-up.
EXTENDED_SCHEME_NAMES: tuple[str, ...] = (
    "static-three-disjoint",
    "dynamic-three-disjoint",
)


def make_policy(name: str) -> RoutingPolicy:
    """Construct a fresh, unattached policy by scheme name."""
    require(
        name in _FACTORIES,
        f"unknown scheme {name!r}; known: {', '.join(sorted(_FACTORIES))}",
    )
    return _FACTORIES[name]()


def standard_policies() -> list[RoutingPolicy]:
    """Fresh instances of all six standard schemes, in presentation order."""
    return [make_policy(name) for name in STANDARD_SCHEME_NAMES]
