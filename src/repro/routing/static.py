"""Static schemes: graphs fixed at attach time.

These are the traditional baselines: a single pre-provisioned path
(``static-single``) and a pre-provisioned pair of node-disjoint paths
(``static-two-disjoint``).  They never react to conditions, which is
exactly why the paper finds they leave most of the reliability gap open.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.builders import k_disjoint_paths_graph, single_path_graph
from repro.core.dgraph import DisseminationGraph
from repro.core.graph import Edge
from repro.netmodel.conditions import LinkState
from repro.routing.base import RoutingPolicy
from repro.util.validation import require

__all__ = ["StaticSinglePathPolicy", "StaticKDisjointPolicy"]


class StaticSinglePathPolicy(RoutingPolicy):
    """One lowest-latency path, chosen once from the base topology."""

    name = "static-single"
    is_dynamic = False

    def __init__(self) -> None:
        super().__init__()
        self._graph: DisseminationGraph | None = None

    def _on_attach(self) -> None:
        self._graph = single_path_graph(
            self.topology, self.flow.source, self.flow.destination, name=self.name
        )

    def _decide(
        self, now_s: float, observed: Mapping[Edge, LinkState]
    ) -> DisseminationGraph:
        assert self._graph is not None
        return self._graph


class StaticKDisjointPolicy(RoutingPolicy):
    """A fixed set of ``k`` node-disjoint paths (k=2 is the paper's baseline)."""

    is_dynamic = False

    def __init__(self, k: int = 2) -> None:
        super().__init__()
        require(k >= 1, f"k must be >= 1, got {k}")
        self.k = k
        words = {2: "two", 3: "three"}
        self.name = f"static-{words.get(k, k)}-disjoint"
        self._graph: DisseminationGraph | None = None

    def _on_attach(self) -> None:
        self._graph = k_disjoint_paths_graph(
            self.topology,
            self.flow.source,
            self.flow.destination,
            k=self.k,
            name=self.name,
        )

    def _decide(
        self, now_s: float, observed: Mapping[Edge, LinkState]
    ) -> DisseminationGraph:
        assert self._graph is not None
        return self._graph
