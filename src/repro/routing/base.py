"""Routing-policy interface and shared helpers.

A policy's lifecycle is: construct with its parameters, :meth:`attach` to
a (topology, flow, service) triple, then receive :meth:`update` calls with
monotonically non-decreasing timestamps and the *observed* network view --
the conditions as the source's daemon currently believes them to be (the
replay engine applies the detection/propagation delay before calling).
``update`` returns the dissemination graph in effect from that instant.

Policies must be deterministic: the same sequence of updates yields the
same graphs.  That, together with the common-random-number loss draws,
makes whole multi-week replays exactly reproducible.
"""

from __future__ import annotations

import abc
from typing import Mapping

from repro.core.dgraph import DisseminationGraph
from repro.core.graph import Edge, NodeId, Topology
from repro.netmodel.conditions import LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.util.validation import require

__all__ = [
    "RoutingPolicy",
    "observed_adjacency",
    "degraded_edge_set",
    "graph_connects",
    "on_time_edges",
    "timely_edge_latencies",
]

# An observed loss rate at or above this is treated as a dead link when
# judging whether a dissemination graph still connects its endpoints
# (neighbour-liveness declarations advertise exactly 1.0).
DEAD_LOSS_THRESHOLD = 0.99

# Weight surcharge applied to a degraded edge when routing cannot avoid it
# entirely: a full blackout counts like an extra second of latency, so any
# clean alternative -- however long -- wins, but among unavoidable lossy
# edges the least-lossy is chosen.
LOSS_PENALTY_MS_PER_UNIT = 1000.0


class RoutingPolicy(abc.ABC):
    """Base class for all routing schemes."""

    #: Human-readable scheme identifier (stable; used in reports).
    name: str = "abstract"

    #: Whether the scheme reacts to network conditions at all.  Static
    #: schemes are never re-invoked after their first update, which lets
    #: the replay engine skip per-segment work for them.
    is_dynamic: bool = True

    def __init__(self) -> None:
        self._topology: Topology | None = None
        self._flow: FlowSpec | None = None
        self._service: ServiceSpec | None = None
        self._last_update_s = float("-inf")
        self._observed_changed: frozenset[Edge] | None = None
        #: Optional :class:`repro.obs.Observability`; policies emit hot-spot
        #: counters/spans through it when set.  ``None`` keeps the hot path
        #: uninstrumented (the common case).
        self.obs = None

    def set_observability(self, obs) -> "RoutingPolicy":
        """Attach an observability bundle (or ``None``/disabled to detach).

        Instrumentation must never change decisions, so this can be
        called at any point in the lifecycle.
        """
        self.obs = obs if obs is not None and getattr(obs, "enabled", False) else None
        return self

    # -- lifecycle ----------------------------------------------------------

    def attach(
        self, topology: Topology, flow: FlowSpec, service: ServiceSpec
    ) -> "RoutingPolicy":
        """Bind the policy to a flow; must be called exactly once."""
        require(self._topology is None, f"policy {self.name} is already attached")
        require(topology.frozen, "policies require a frozen topology")
        require(topology.has_node(flow.source), f"unknown source {flow.source!r}")
        require(
            topology.has_node(flow.destination),
            f"unknown destination {flow.destination!r}",
        )
        self._topology = topology
        self._flow = flow
        self._service = service
        self._on_attach()
        return self

    def _on_attach(self) -> None:
        """Hook for subclasses to precompute graphs."""

    @property
    def topology(self) -> Topology:
        """The attached topology (raises if unattached)."""
        require(self._topology is not None, f"policy {self.name} is not attached")
        assert self._topology is not None
        return self._topology

    @property
    def flow(self) -> FlowSpec:
        """The attached flow (raises if unattached)."""
        require(self._flow is not None, f"policy {self.name} is not attached")
        assert self._flow is not None
        return self._flow

    @property
    def service(self) -> ServiceSpec:
        """The attached service spec (raises if unattached)."""
        require(self._service is not None, f"policy {self.name} is not attached")
        assert self._service is not None
        return self._service

    # -- decisions ------------------------------------------------------------

    def update(
        self,
        now_s: float,
        observed: Mapping[Edge, LinkState],
        changed: frozenset[Edge] | None = None,
    ) -> DisseminationGraph:
        """Return the graph in effect from ``now_s`` given the observed view.

        ``observed`` maps degraded edges to their (believed) state; edges
        absent from the mapping are believed clean.  ``changed``, when
        given, names exactly the edges whose observed state differs from
        the view of the previous ``update`` call -- an incremental-replay
        hint that lets caching policies skip recomputation for irrelevant
        changes.  ``None`` means "unknown; anything may have changed".
        Callers that pass deltas are responsible for their accuracy: an
        understated delta silently yields stale decisions.
        """
        require(self._topology is not None, f"policy {self.name} is not attached")
        require(
            now_s >= self._last_update_s,
            f"policy updates must move forward in time "
            f"({now_s} < {self._last_update_s})",
        )
        self._last_update_s = now_s
        self._observed_changed = changed
        return self._decide(now_s, observed)

    @abc.abstractmethod
    def _decide(
        self, now_s: float, observed: Mapping[Edge, LinkState]
    ) -> DisseminationGraph:
        """Scheme-specific decision; timestamps already validated."""

    def reset(self) -> None:
        """Clear temporal state so the policy can replay another trace."""
        self._last_update_s = float("-inf")
        self._observed_changed = None


def degraded_edge_set(
    observed: Mapping[Edge, LinkState], loss_threshold: float
) -> frozenset[Edge]:
    """Edges whose observed loss rate meets the degradation threshold."""
    return frozenset(
        edge
        for edge, state in observed.items()
        if state.loss_rate >= loss_threshold
    )


def graph_connects(
    graph: DisseminationGraph,
    observed: Mapping[Edge, LinkState],
    dead_loss_threshold: float = DEAD_LOSS_THRESHOLD,
) -> bool:
    """Does the graph still have a live source->destination route?

    "Live" excludes edges the observed view believes are effectively dead
    (loss at or above ``dead_loss_threshold``).  Routing daemons use this
    to reject a freshly computed graph that the current view already
    knows cannot deliver, falling back to their last-known-good graph
    instead of installing a disconnected one.
    """
    dead = {
        edge
        for edge, state in observed.items()
        if state.loss_rate >= dead_loss_threshold
    }
    frontier = [graph.source]
    reached = {graph.source}
    while frontier:
        node = frontier.pop()
        if node == graph.destination:
            return True
        for neighbor in graph.out_neighbors(node):
            if neighbor in reached or (node, neighbor) in dead:
                continue
            reached.add(neighbor)
            frontier.append(neighbor)
    return graph.destination in reached


def on_time_edges(
    topology: Topology,
    observed: Mapping[Edge, LinkState],
    source: NodeId,
    destination: NodeId,
    deadline_ms: float,
) -> frozenset[Edge]:
    """Edges still usable within the deadline at *observed* latencies.

    The time-constrained-flooding criterion applied to the live view: edge
    ``(u, v)`` is usable iff ``dist(source, u) + lat(u, v) +
    dist(v, destination) <= deadline``.  Timely re-routing restricts its
    search to this set so it never installs a path that cannot possibly
    deliver on time.
    """
    return frozenset(
        edge
        for edge, through in timely_edge_latencies(
            topology, observed, source, destination
        ).items()
        if through <= deadline_ms
    )


def timely_edge_latencies(
    topology: Topology,
    observed: Mapping[Edge, LinkState],
    source: NodeId,
    destination: NodeId,
) -> dict[Edge, float]:
    """Best source->edge->destination through-latency per reachable edge.

    The quantity :func:`on_time_edges` thresholds, exposed so callers
    that must *rank* edges (candidate pruning at large N) reuse the same
    two Dijkstra passes instead of running their own.
    """
    from repro.core.algorithms import single_source_distances
    from repro.core.algorithms.adjacency import reverse_adjacency

    adjacency = observed_adjacency(topology, observed)
    from_source = single_source_distances(adjacency, source)
    to_destination = single_source_distances(
        reverse_adjacency(adjacency), destination
    )
    through: dict[Edge, float] = {}
    for node, neighbors in adjacency.items():
        head = from_source.get(node)
        if head is None:
            continue
        for neighbor, weight in neighbors.items():
            tail = to_destination.get(neighbor)
            if tail is None:
                continue
            through[(node, neighbor)] = head + weight + tail
    return through


def observed_adjacency(
    topology: Topology,
    observed: Mapping[Edge, LinkState],
    exclude: frozenset[Edge] = frozenset(),
    penalize_loss: bool = False,
) -> dict[NodeId, dict[NodeId, float]]:
    """Adjacency weighted by *observed* effective latency.

    ``exclude`` drops edges outright (the normal way dynamic schemes avoid
    degraded links).  With ``penalize_loss`` the lossy edges stay but carry
    a large latency surcharge proportional to loss -- the fallback when
    exclusion would disconnect the flow.
    """
    adjacency: dict[NodeId, dict[NodeId, float]] = {
        node: {} for node in topology.nodes
    }
    for link in topology.iter_links():
        if link.edge in exclude:
            continue
        state = observed.get(link.edge)
        weight = link.latency_ms
        if state is not None:
            weight += state.extra_latency_ms
            if penalize_loss:
                weight += state.loss_rate * LOSS_PENALTY_MS_PER_UNIT
        adjacency[link.source][link.target] = weight
    return adjacency
