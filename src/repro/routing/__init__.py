"""Routing policies: the six schemes the paper's evaluation compares.

Every policy exposes the same tiny interface
(:class:`~repro.routing.base.RoutingPolicy`): given the *observed* network
view at a decision time, return the dissemination graph to use until the
next decision.  The replay engines feed policies a delayed view of
conditions (modelling monitoring + link-state propagation latency) and
charge them the cost of every edge in whatever graph they pick.

Schemes (paper Section VI):

=====================  ==========================================================
``static-single``      one fixed lowest-latency path
``dynamic-single``     lowest-latency path avoiding currently degraded links
``static-two-disjoint``  one fixed pair of node-disjoint paths
``dynamic-two-disjoint`` re-selected pair of node-disjoint paths
``targeted``           the paper's contribution: two disjoint paths plus
                       precomputed targeted redundancy on endpoint problems
``flooding``           time-constrained flooding (optimal, expensive)
=====================  ==========================================================
"""

from repro.routing.base import RoutingPolicy, observed_adjacency
from repro.routing.dynamic import DynamicSinglePathPolicy, DynamicTwoDisjointPolicy
from repro.routing.flooding import TimeConstrainedFloodingPolicy
from repro.routing.registry import (
    EXTENDED_SCHEME_NAMES,
    STANDARD_SCHEME_NAMES,
    make_policy,
    standard_policies,
)
from repro.routing.static import StaticKDisjointPolicy, StaticSinglePathPolicy
from repro.routing.targeted import TargetedRedundancyPolicy

__all__ = [
    "DynamicSinglePathPolicy",
    "DynamicTwoDisjointPolicy",
    "EXTENDED_SCHEME_NAMES",
    "RoutingPolicy",
    "STANDARD_SCHEME_NAMES",
    "StaticKDisjointPolicy",
    "StaticSinglePathPolicy",
    "TargetedRedundancyPolicy",
    "TimeConstrainedFloodingPolicy",
    "make_policy",
    "observed_adjacency",
    "standard_policies",
]
