"""The paper's contribution: targeted-redundancy dissemination graphs.

Normal operation uses the two node-disjoint paths (cheap, good enough in
most cases -- claim C3).  When the detector classifies a problem:

* **middle problem** -- re-route: recompute two disjoint paths avoiding
  the degraded links (redundancy would not help; path selection does);
* **source problem** -- switch to the *precomputed* source-problem graph
  (packets leave the source over all its adjacent links);
* **destination problem** -- switch to the precomputed destination-problem
  graph (packets enter the destination over all its adjacent links);
* **both** -- the precomputed robust source+destination graph.

Problem graphs are precomputed at attach time so switching costs nothing
at detection time, exactly as the paper argues a deployable system must.
A hold-down keeps a problem graph installed briefly after the pattern
clears, riding out the bursty gaps within one underlying outage.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.algorithms import NoPathError, disjoint_paths
from repro.core.builders import (
    destination_problem_graph,
    k_disjoint_paths_graph,
    robust_source_destination_graph,
    source_problem_graph,
)
from repro.core.detection import ProblemClassifier, ProblemDetector, ProblemType
from repro.core.dgraph import DisseminationGraph
from repro.core.graph import Edge
from repro.netmodel.conditions import LinkState
from repro.routing.base import (
    RoutingPolicy,
    degraded_edge_set,
    observed_adjacency,
    timely_edge_latencies,
)
from repro.util.validation import require, require_non_negative

__all__ = ["TargetedRedundancyPolicy"]


class TargetedRedundancyPolicy(RoutingPolicy):
    """Two disjoint paths plus targeted redundancy on endpoint problems."""

    name = "targeted"

    def __init__(
        self,
        loss_threshold: float = 0.02,
        endpoint_link_threshold: int = 2,
        hold_down_s: float = 10.0,
        max_entry_links: int | None = None,
        max_exit_links: int | None = None,
        max_candidate_edges: int | None = None,
    ) -> None:
        super().__init__()
        require_non_negative(hold_down_s, "hold_down_s")
        require(
            max_entry_links is None or max_entry_links >= 1,
            "max_entry_links must be None or >= 1",
        )
        require(
            max_exit_links is None or max_exit_links >= 1,
            "max_exit_links must be None or >= 1",
        )
        require(
            max_candidate_edges is None or max_candidate_edges >= 2,
            "max_candidate_edges must be None or >= 2",
        )
        self.loss_threshold = loss_threshold
        self.endpoint_link_threshold = endpoint_link_threshold
        self.hold_down_s = hold_down_s
        self.max_entry_links = max_entry_links
        self.max_exit_links = max_exit_links
        # Beam cap on the re-route search: at most this many timely edges
        # are admitted as candidates (best through-latency first).  None
        # scales with the topology: max(64, 4 * nodes) -- never binding on
        # the 12-site reference overlay, bounding the disjoint-path search
        # to O(nodes) edges on the generated large meshes.
        self.max_candidate_edges = max_candidate_edges
        self._detector: ProblemDetector | None = None
        self._base_graph: DisseminationGraph | None = None
        self._problem_graphs: dict[ProblemType, DisseminationGraph] = {}
        self._middle_cache_key: object = None
        self._middle_cache_graph: DisseminationGraph | None = None
        # Sticky memory of recently degraded edges: edge -> last time seen
        # degraded.  Bursty outages flap faster than they heal; a link seen
        # lossy within the hold-down stays excluded from re-routing even
        # while it momentarily looks clean.
        self._recently_degraded: dict[Edge, float] = {}

    # -- lifecycle ------------------------------------------------------------

    def _on_attach(self) -> None:
        source, destination = self.flow.source, self.flow.destination
        self._base_graph = k_disjoint_paths_graph(
            self.topology, source, destination, k=2, name=f"{self.name}/base"
        )
        deadline = self.service.deadline_ms
        self._problem_graphs = {
            ProblemType.SOURCE: source_problem_graph(
                self.topology,
                source,
                destination,
                max_exit_links=self.max_exit_links,
                deadline_ms=deadline,
                name=f"{self.name}/source-problem",
            ),
            ProblemType.DESTINATION: destination_problem_graph(
                self.topology,
                source,
                destination,
                max_entry_links=self.max_entry_links,
                deadline_ms=deadline,
                name=f"{self.name}/destination-problem",
            ),
            ProblemType.SOURCE_AND_DESTINATION: robust_source_destination_graph(
                self.topology,
                source,
                destination,
                max_entry_links=self.max_entry_links,
                max_exit_links=self.max_exit_links,
                deadline_ms=deadline,
                name=f"{self.name}/robust",
            ),
        }
        self._detector = ProblemDetector(
            self.topology,
            source,
            destination,
            classifier=ProblemClassifier(
                loss_threshold=self.loss_threshold,
                endpoint_link_threshold=self.endpoint_link_threshold,
            ),
            hold_down_s=self.hold_down_s,
        )

    def reset(self) -> None:
        """Rebuild detector and caches for a fresh replay."""
        super().reset()
        if self._topology is not None:
            self._on_attach()  # rebuild detector state; graphs are pure
        self._middle_cache_key = None
        self._middle_cache_graph = None
        self._recently_degraded = {}

    # -- decisions ----------------------------------------------------------------

    @property
    def problem_graphs(self) -> dict[ProblemType, DisseminationGraph]:
        """The precomputed problem graphs (exposed for inspection/benches)."""
        return dict(self._problem_graphs)

    def _decide(
        self, now_s: float, observed: Mapping[Edge, LinkState]
    ) -> DisseminationGraph:
        assert self._detector is not None and self._base_graph is not None
        loss_rates = {
            edge: state.loss_rate
            for edge, state in observed.items()
            if state.loss_rate > 0.0
        }
        for edge in degraded_edge_set(observed, self.loss_threshold):
            self._recently_degraded[edge] = now_s
        problem = self._detector.update(now_s, loss_rates)
        if problem in self._problem_graphs:
            graph = self._problem_graphs[problem]
            # An endpoint problem can coincide with trouble in the middle
            # of the network.  The precomputed problem graph reaches each
            # endpoint-adjacent link over a single upstream path; if one of
            # those paths is itself degraded (or latency-inflated), union
            # in the timely re-route so copies also travel around the
            # middle trouble.  Rare, so the cost impact is negligible.
            sticky = self._sticky_degraded(now_s)
            source, destination = self.flow.source, self.flow.destination
            middle_trouble = {
                edge
                for edge in graph.edges
                if source not in edge and destination not in edge
            }
            inflated = {
                edge
                for edge, state in observed.items()
                if state.extra_latency_ms > 0.0
            }
            if middle_trouble & (sticky | inflated):
                reroute = self._middle_reroute(now_s, observed)
                graph = graph.union(reroute, name=graph.name)
            return graph
        if problem is ProblemType.MIDDLE:
            return self._middle_reroute(now_s, observed)
        return self._base_graph

    @property
    def candidate_cap(self) -> int:
        """The effective beam cap (resolves the node-count-scaled default)."""
        if self.max_candidate_edges is not None:
            return self.max_candidate_edges
        return max(64, 4 * self.topology.num_nodes)

    def _candidate_edges(self, observed: Mapping[Edge, LinkState]) -> frozenset[Edge]:
        """Timely candidate edges for re-routing, beam-capped at scale.

        This is the targeted search's hot spot on large topologies (two
        Dijkstra passes over the full mesh plus a disjoint-path search
        over the surviving edges), so it is the one place the policy
        reports to :mod:`repro.obs`: a ``routing.targeted.candidates``
        span and considered/kept counters.  When more edges are timely
        than the cap admits, the best by through-latency win (ties by
        edge name) -- pruning the longest detours first, which are the
        edges a deadline-meeting disjoint pair is least likely to use.
        """
        obs = self.obs
        start_s = obs.tracer.now() if obs is not None else 0.0
        through = timely_edge_latencies(
            self.topology, observed, self.flow.source, self.flow.destination
        )
        deadline = self.service.deadline_ms
        timely = [edge for edge, ms in through.items() if ms <= deadline]
        cap = self.candidate_cap
        if len(timely) > cap:
            timely.sort(key=lambda edge: (through[edge], edge))
            kept = frozenset(timely[:cap])
        else:
            kept = frozenset(timely)
        if obs is not None:
            metrics = obs.metrics
            metrics.counter("routing.targeted.candidates.considered").inc(
                len(timely)
            )
            metrics.counter("routing.targeted.candidates.kept").inc(len(kept))
            if len(timely) > len(kept):
                metrics.counter("routing.targeted.candidates.pruned").inc(
                    len(timely) - len(kept)
                )
            obs.tracer.complete(
                "targeted.candidates",
                "routing",
                start_s,
                obs.tracer.now(),
                flow=self.flow.name,
                considered=len(timely),
                kept=len(kept),
                cap=cap,
            )
        return kept

    def _sticky_degraded(self, now_s: float) -> frozenset[Edge]:
        """Edges seen degraded within the hold-down window."""
        horizon = now_s - self.hold_down_s
        stale = [e for e, seen in self._recently_degraded.items() if seen < horizon]
        for edge in stale:
            del self._recently_degraded[edge]
        return frozenset(self._recently_degraded)

    def _middle_reroute(
        self, now_s: float, observed: Mapping[Edge, LinkState]
    ) -> DisseminationGraph:
        """Two disjoint *timely* paths avoiding recently degraded links.

        Unlike the plain dynamic scheme, the exclusion set is sticky (a
        link seen lossy during this episode stays excluded through the
        burst gaps) and the search is restricted to edges that can still
        meet the deadline at observed latencies.
        """
        degraded = self._sticky_degraded(now_s)
        timely = self._candidate_edges(observed)
        inflated = tuple(
            sorted(
                (edge, state.extra_latency_ms)
                for edge, state in observed.items()
                if state.extra_latency_ms > 0.0
            )
        )
        cache_key = (degraded, timely, inflated)
        if cache_key == self._middle_cache_key and self._middle_cache_graph:
            return self._middle_cache_graph
        source, destination = self.flow.source, self.flow.destination
        not_timely = frozenset(self.topology.edges) - timely
        adjacency = observed_adjacency(
            self.topology, observed, exclude=degraded | not_timely
        )
        paths = disjoint_paths(adjacency, source, destination, k=2)
        if len(paths) < 2 and not_timely:
            # No clean timely pair: re-admit lossy-but-timely edges with a
            # loss surcharge so the pairing maximises cleanliness.
            penalized = observed_adjacency(
                self.topology, observed, exclude=not_timely, penalize_loss=True
            )
            paths = disjoint_paths(penalized, source, destination, k=2)
        if len(paths) < 2:
            # Deadline unmeetable on two paths: best effort over everything.
            penalized = observed_adjacency(
                self.topology, observed, penalize_loss=True
            )
            paths = disjoint_paths(penalized, source, destination, k=2)
        if not paths:  # pragma: no cover - topology is connected by contract
            raise NoPathError(source, destination)
        graph = DisseminationGraph.from_paths(paths, name=f"{self.name}/reroute")
        self._middle_cache_key = cache_key
        self._middle_cache_graph = graph
        return graph
