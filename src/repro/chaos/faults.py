"""Declarative fault descriptions and the schedule that groups them.

A fault is a frozen dataclass naming *what* breaks and for *which time
span* (seconds from run start).  A :class:`FaultSchedule` bundles faults
of every kind and is the unit the injector executes, the invariant
checker consults, and the generator emits.  Schedules are plain data:
hashable, comparable, and fingerprintable, so a chaos run can be
identified (and cached, and reproduced) by ``(seed, fingerprint)``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.graph import Edge, NodeId, Topology
from repro.util.validation import require

__all__ = [
    "NodeCrash",
    "LinkBlackhole",
    "Partition",
    "MessageFaults",
    "DaemonStall",
    "FaultSchedule",
]


def _require_span(start_s: float, duration_s: float) -> None:
    require(start_s >= 0, "fault start must be >= 0")
    require(duration_s > 0, "fault duration must be positive")


@dataclass(frozen=True)
class NodeCrash:
    """A site's daemon dies at ``start_s`` and comes back after ``duration_s``.

    A *cold* rejoin restarts with an empty LSDB and fresh link monitors
    (the realistic process-restart case); a warm restart keeps protocol
    state intact (models a brief freeze, e.g. a stop-the-world pause).
    """

    node: NodeId
    start_s: float
    duration_s: float
    cold_rejoin: bool = True

    def __post_init__(self) -> None:
        _require_span(self.start_s, self.duration_s)

    @property
    def end_s(self) -> float:
        """Instant the node comes back up."""
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class LinkBlackhole:
    """A directed overlay link silently eats every message for a while.

    By default the blackhole is *asymmetric* -- only the named direction
    is blocked, the reverse keeps working -- which is the nastier case
    for hello-based monitoring (probes die, or acks die, but not both).
    """

    edge: Edge
    start_s: float
    duration_s: float
    bidirectional: bool = False

    def __post_init__(self) -> None:
        _require_span(self.start_s, self.duration_s)

    @property
    def end_s(self) -> float:
        """Instant the link heals."""
        return self.start_s + self.duration_s

    def blocked_edges(self, topology: Topology) -> tuple[Edge, ...]:
        """The directed edges this fault blocks."""
        require(
            topology.has_edge(*self.edge),
            f"blackhole names unknown edge {self.edge!r}",
        )
        if not self.bidirectional:
            return (self.edge,)
        reverse = (self.edge[1], self.edge[0])
        if topology.has_edge(*reverse):
            return (self.edge, reverse)
        return (self.edge,)


@dataclass(frozen=True)
class Partition:
    """A group of nodes is cut off from the rest of the overlay.

    Every directed edge crossing the cut (both directions) is blocked for
    the duration; edges internal to either side keep working.
    """

    side: tuple[NodeId, ...]
    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        _require_span(self.start_s, self.duration_s)
        require(bool(self.side), "a partition needs at least one node")
        require(
            len(set(self.side)) == len(self.side),
            "partition side lists a node twice",
        )

    @property
    def end_s(self) -> float:
        """Instant the partition heals."""
        return self.start_s + self.duration_s

    def blocked_edges(self, topology: Topology) -> tuple[Edge, ...]:
        """Every directed edge crossing the cut, in topology order."""
        inside = set(self.side)
        for node in inside:
            require(topology.has_node(node), f"partition names unknown node {node!r}")
        return tuple(
            link.edge
            for link in topology.iter_links()
            if (link.source in inside) != (link.target in inside)
        )


@dataclass(frozen=True)
class MessageFaults:
    """A window of message-level faults applied network-wide.

    Within the window each transmitted message independently may be
    duplicated (an extra copy delivered), reordered (delayed past later
    sends), or corrupted (its frame checksum damaged, so the receiver
    drops it).  Rates are per-message probabilities; decisions are drawn
    from the injector's deterministic stream.
    """

    start_s: float
    duration_s: float
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_delay_ms: float = 5.0
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        _require_span(self.start_s, self.duration_s)
        for name in ("duplicate_rate", "reorder_rate", "corrupt_rate"):
            rate = getattr(self, name)
            require(0.0 <= rate <= 1.0, f"{name} must be in [0, 1]")
        require(self.reorder_delay_ms >= 0, "reorder_delay_ms must be >= 0")

    @property
    def end_s(self) -> float:
        """Instant the fault window closes."""
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class DaemonStall:
    """A flow's routing daemon freezes: update ticks are missed.

    The installed dissemination graph keeps forwarding; the daemon just
    stops reacting to network conditions until the stall lifts.
    """

    flow: str
    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        _require_span(self.start_s, self.duration_s)

    @property
    def end_s(self) -> float:
        """Instant the daemon resumes ticking."""
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class FaultSchedule:
    """Every fault planned for one chaos run."""

    crashes: tuple[NodeCrash, ...] = ()
    blackholes: tuple[LinkBlackhole, ...] = ()
    partitions: tuple[Partition, ...] = ()
    message_faults: tuple[MessageFaults, ...] = ()
    stalls: tuple[DaemonStall, ...] = field(default=())

    def __iter__(self):
        yield from self.crashes
        yield from self.blackholes
        yield from self.partitions
        yield from self.message_faults
        yield from self.stalls

    def __len__(self) -> int:
        return (
            len(self.crashes)
            + len(self.blackholes)
            + len(self.partitions)
            + len(self.message_faults)
            + len(self.stalls)
        )

    @property
    def end_s(self) -> float:
        """Instant the last fault clears (0.0 for an empty schedule)."""
        return max((fault.end_s for fault in self), default=0.0)

    def fingerprint(self) -> str:
        """Stable short hash identifying this exact schedule.

        Frozen dataclasses repr deterministically, so the fingerprint is
        a pure function of the schedule's contents; the injector mixes it
        into its random stream so two different schedules never share
        per-message fault draws even under the same seed.
        """
        return hashlib.sha256(repr(self).encode("utf-8")).hexdigest()[:16]

    # -- point-in-time queries (used by the invariant checker) -----------------

    def crashed_nodes_at(self, now_s: float) -> frozenset[NodeId]:
        """Nodes that are down at ``now_s``."""
        return frozenset(
            crash.node
            for crash in self.crashes
            if crash.start_s <= now_s < crash.end_s
        )

    def blocked_edges_at(self, now_s: float, topology: Topology) -> frozenset[Edge]:
        """Directed edges blackholed or partitioned away at ``now_s``."""
        blocked: set[Edge] = set()
        for blackhole in self.blackholes:
            if blackhole.start_s <= now_s < blackhole.end_s:
                blocked.update(blackhole.blocked_edges(topology))
        for partition in self.partitions:
            if partition.start_s <= now_s < partition.end_s:
                blocked.update(partition.blocked_edges(topology))
        return frozenset(blocked)
