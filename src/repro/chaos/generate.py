"""Seeded fault-schedule generation and ground-truth event export.

``generate_fault_schedule`` turns a :class:`ChaosSpec` (how many faults
of each kind, how long, where not to aim) into a concrete
:class:`~repro.chaos.faults.FaultSchedule` using the same keyed SHA-256
stream discipline as the rest of the repository: every placement and
every time draw is a pure function of ``(seed, draw key)``, so the same
seed always yields the same schedule, independent of call order.

``to_events`` exports a schedule as ground-truth
:class:`~repro.netmodel.events.ProblemEvent` records (kinds ``CRASH``
and ``PARTITION``), which lets the analysis layer score per-flow
classification against injected faults exactly as it does for generated
loss episodes.

``outage_windows`` and ``schedule_from_events`` go the other way: from
ground-truth events back to a live fault schedule.  The scenario-family
subsystem uses them to derive, from one compiled event list, the exact
:class:`FaultSchedule` the injector executes -- the "single world"
contract between analytic replay and live chaos.  Overlapping and
zero-gap back-to-back full-loss windows on the same edge are coalesced
(per the same-cause netting policy in :mod:`repro.netmodel.events`)
rather than emitted last-writer-wins, so the derived schedule's
``blocked_edges_at`` agrees with the compiled timeline at every instant,
including SRLG partition/heal overlaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.chaos.faults import (
    DaemonStall,
    FaultSchedule,
    LinkBlackhole,
    MessageFaults,
    NodeCrash,
    Partition,
)
from repro.core.graph import Edge, NodeId, Topology
from repro.netmodel.conditions import LinkState
from repro.netmodel.events import Burst, EventKind, LinkDegradation, ProblemEvent
from repro.util.rng import DeterministicStream
from repro.util.validation import require

__all__ = [
    "ChaosSpec",
    "FULL_LOSS",
    "generate_fault_schedule",
    "outage_windows",
    "schedule_from_events",
    "to_events",
]

#: Loss rate at or above which a window counts as a hard outage (and is
#: therefore representable as an injector blackhole).
FULL_LOSS = 1.0 - 1e-9


@dataclass(frozen=True)
class ChaosSpec:
    """What a generated chaos run should contain."""

    duration_s: float = 30.0
    crashes: int = 1
    blackholes: int = 1
    partitions: int = 0
    stalls: int = 0
    message_fault_windows: int = 0
    duplicate_rate: float = 0.05
    reorder_rate: float = 0.05
    reorder_delay_ms: float = 5.0
    corrupt_rate: float = 0.05
    min_fault_s: float = 2.0
    max_fault_s: float = 8.0
    settle_s: float = 6.0  # every fault clears at least this long before the end
    protected_nodes: frozenset[NodeId] = frozenset()

    def __post_init__(self) -> None:
        require(self.duration_s > 0, "duration_s must be positive")
        for name in ("crashes", "blackholes", "partitions", "stalls",
                     "message_fault_windows"):
            require(getattr(self, name) >= 0, f"{name} must be >= 0")
        require(
            0 < self.min_fault_s <= self.max_fault_s,
            "need 0 < min_fault_s <= max_fault_s",
        )
        require(self.settle_s >= 0, "settle_s must be >= 0")
        require(
            self.max_fault_s + self.settle_s < self.duration_s,
            "faults plus settle time must fit inside the run",
        )


def _span(
    stream: DeterministicStream, spec: ChaosSpec, *key: object
) -> tuple[float, float]:
    """Draw one (start, duration) pair that clears before the settle window."""
    duration = stream.uniform_between(
        spec.min_fault_s, spec.max_fault_s, *key, "duration"
    )
    latest_start = spec.duration_s - spec.settle_s - duration
    start = stream.uniform_between(0.0, latest_start, *key, "start")
    return start, duration


def generate_fault_schedule(
    topology: Topology,
    spec: ChaosSpec,
    seed: int,
    flows: tuple[str, ...] = (),
) -> FaultSchedule:
    """Draw a concrete fault schedule; deterministic in ``(spec, seed)``.

    ``protected_nodes`` (typically flow sources and destinations) are
    never crashed or partitioned away -- chaos aims at relays, matching
    the paper's setting where endpoints are the service's fixed points.
    ``flows`` supplies the flow names stalls may target.
    """
    stream = DeterministicStream(seed, "chaos-generate")
    targets = tuple(
        node for node in sorted(topology.nodes) if node not in spec.protected_nodes
    )
    edges = tuple(sorted(link.edge for link in topology.iter_links()))
    require(
        not (spec.crashes or spec.partitions) or bool(targets),
        "no unprotected nodes left to crash or partition",
    )
    require(not spec.blackholes or bool(edges), "topology has no links to blackhole")
    require(not spec.stalls or bool(flows), "stalls need at least one flow name")

    crashes = []
    for index in range(spec.crashes):
        start, duration = _span(stream, spec, "crash", index)
        crashes.append(
            NodeCrash(
                node=stream.choice(targets, "crash", index, "node"),
                start_s=start,
                duration_s=duration,
                cold_rejoin=stream.bernoulli(0.75, "crash", index, "cold"),
            )
        )

    blackholes = []
    for index in range(spec.blackholes):
        start, duration = _span(stream, spec, "blackhole", index)
        blackholes.append(
            LinkBlackhole(
                edge=stream.choice(edges, "blackhole", index, "edge"),
                start_s=start,
                duration_s=duration,
                bidirectional=stream.bernoulli(0.5, "blackhole", index, "bidi"),
            )
        )

    partitions = []
    for index in range(spec.partitions):
        start, duration = _span(stream, spec, "partition", index)
        partitions.append(
            Partition(
                side=(stream.choice(targets, "partition", index, "node"),),
                start_s=start,
                duration_s=duration,
            )
        )

    windows = []
    for index in range(spec.message_fault_windows):
        start, duration = _span(stream, spec, "messages", index)
        windows.append(
            MessageFaults(
                start_s=start,
                duration_s=duration,
                duplicate_rate=spec.duplicate_rate,
                reorder_rate=spec.reorder_rate,
                reorder_delay_ms=spec.reorder_delay_ms,
                corrupt_rate=spec.corrupt_rate,
            )
        )

    stalls = []
    for index in range(spec.stalls):
        start, duration = _span(stream, spec, "stall", index)
        stalls.append(
            DaemonStall(
                flow=stream.choice(flows, "stall", index, "flow"),
                start_s=start,
                duration_s=duration,
            )
        )

    return FaultSchedule(
        crashes=tuple(crashes),
        blackholes=tuple(blackholes),
        partitions=tuple(partitions),
        message_faults=tuple(windows),
        stalls=tuple(stalls),
    )


def _full_loss(edges) -> tuple[LinkDegradation, ...]:
    return tuple(
        LinkDegradation(edge, LinkState(loss_rate=1.0, extra_latency_ms=0.0))
        for edge in edges
    )


def to_events(schedule: FaultSchedule, topology: Topology) -> list[ProblemEvent]:
    """Export connectivity faults as ground-truth problem events.

    Crashes become ``CRASH`` events degrading every edge adjacent to the
    node (in both directions -- a dead daemon neither sends nor acks);
    partitions become ``PARTITION`` events degrading the cut; blackholes
    become ``LINK`` events on their blocked edges.  Message-level faults
    and stalls have no per-edge ground truth and are not exported.
    """
    events: list[ProblemEvent] = []
    for crash in schedule.crashes:
        adjacent = [
            link.edge
            for link in topology.iter_links()
            if crash.node in link.edge
        ]
        events.append(
            ProblemEvent(
                kind=EventKind.CRASH,
                location=crash.node,
                start_s=crash.start_s,
                duration_s=crash.duration_s,
                bursts=(
                    Burst(crash.start_s, crash.duration_s, _full_loss(adjacent)),
                ),
            )
        )
    for partition in schedule.partitions:
        events.append(
            ProblemEvent(
                kind=EventKind.PARTITION,
                location=partition.side[0],
                start_s=partition.start_s,
                duration_s=partition.duration_s,
                bursts=(
                    Burst(
                        partition.start_s,
                        partition.duration_s,
                        _full_loss(partition.blocked_edges(topology)),
                    ),
                ),
            )
        )
    for blackhole in schedule.blackholes:
        events.append(
            ProblemEvent(
                kind=EventKind.LINK,
                location=blackhole.edge,
                start_s=blackhole.start_s,
                duration_s=blackhole.duration_s,
                bursts=(
                    Burst(
                        blackhole.start_s,
                        blackhole.duration_s,
                        _full_loss(blackhole.blocked_edges(topology)),
                    ),
                ),
            )
        )
    events.sort(key=lambda event: (event.start_s, event.kind.value))
    return events


def outage_windows(
    events: Iterable[ProblemEvent],
) -> list[tuple[Edge, float, float]]:
    """Coalesced hard-outage windows per directed edge, as ``(edge, start, end)``.

    Every burst window whose loss rate reaches :data:`FULL_LOSS` counts;
    windows on the same edge that overlap -- or abut with zero gap -- are
    merged into one, because the injector (and the network) cannot
    distinguish a blackhole that heals and instantly re-fires from one
    continuous blackhole.  Without the merge, a staggered SRLG cut whose
    legs overlap would come out as stacked duplicate blackholes whose
    repair order depends on emission order (the last-writer-wins bug
    class).  Output is sorted by ``(edge, start)``.
    """
    per_edge: dict[Edge, list[tuple[float, float]]] = {}
    for event in events:
        for burst in event.bursts:
            for degradation in burst.degradations:
                if degradation.state.loss_rate >= FULL_LOSS:
                    per_edge.setdefault(degradation.edge, []).append(
                        (burst.start_s, burst.end_s)
                    )
    result: list[tuple[Edge, float, float]] = []
    for edge in sorted(per_edge):
        windows = sorted(per_edge[edge])
        merged: list[list[float]] = []
        for start, end in windows:
            if merged and start <= merged[-1][1]:  # overlap or zero gap
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        result.extend((edge, start, end) for start, end in merged)
    return result


def schedule_from_events(
    events: Sequence[ProblemEvent], topology: Topology
) -> FaultSchedule:
    """Derive the live fault schedule implied by a compiled event list.

    Each coalesced hard-outage window becomes one directed
    :class:`LinkBlackhole`; soft degradations (partial loss, latency
    inflation) have no injector-level counterpart and are carried to the
    live run by the condition timeline itself.  The derivation is a pure
    function of the event list, so the same scenario description always
    yields the bitwise-identical schedule (same ``fingerprint()``).
    """
    blackholes = []
    for edge, start, end in outage_windows(events):
        require(
            topology.has_edge(*edge),
            f"outage window references unknown edge {edge!r}",
        )
        blackholes.append(
            LinkBlackhole(
                edge=edge,
                start_s=start,
                duration_s=end - start,
                bidirectional=False,
            )
        )
    blackholes.sort(key=lambda hole: (hole.start_s, hole.edge))
    return FaultSchedule(blackholes=tuple(blackholes))
