"""Conservation properties a chaos run must never violate.

The checker observes the harness through the nodes' delivery taps (no
protocol code paths change when it is attached) and records violations
instead of raising mid-run, so a broken run reports *every* violated
invariant, not just the first.  ``assert_ok`` turns the record into an
:class:`InvariantViolation` for tests.

Invariants:

* **no duplicate delivery** -- a (destination, flow, sequence) triple is
  handed to the application at most once, across crashes and cold
  rejoins (the delivery journal is stable storage);
* **no delivery while crashed** -- a stopped daemon must not hand
  packets to its application;
* **causality** -- nothing is delivered before it was sent;
* **sequence monotonicity** -- within a flow, higher sequence numbers
  were sent later (the sender's clock and counter agree);
* **LSDB convergence** (checked on demand after faults clear) -- no
  running daemon still believes a heavy-loss claim about an edge that
  the ground-truth timeline and the fault schedule both say is healthy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.chaos.faults import FaultSchedule
from repro.core.graph import NodeId
from repro.util.validation import require

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.overlay.harness import OverlayHarness
    from repro.overlay.messages import DataPacket
    from repro.overlay.node import OverlayNode

__all__ = ["InvariantChecker", "InvariantViolation", "Violation"]

# A delivered-then-rechecked LSDB claim counts as stale only if it alleges
# at least this much loss while ground truth shows (almost) none.
_STALE_CLAIM_LOSS = 0.5
_TRUTH_LOSS_FLOOR = 0.25
_CLOCK_SLACK_S = 1e-9


class InvariantViolation(AssertionError):
    """Raised by :meth:`InvariantChecker.assert_ok` when a run misbehaved."""


@dataclass(frozen=True)
class Violation:
    """One observed breach: when, which invariant, and the evidence."""

    at_s: float
    invariant: str
    detail: str


@dataclass
class InvariantChecker:
    """Observes a harness run and records invariant breaches."""

    violations: list[Violation] = field(default_factory=list)
    #: Callbacks invoked with each :class:`Violation` as it is flagged
    #: (the observability layer hooks flight-recorder dumps in here).
    taps: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self._harness: "OverlayHarness | None" = None
        self._schedule = FaultSchedule()
        # (destination, flow, sequence) -> delivery time
        self._delivered: dict[tuple[NodeId, str, int], float] = {}
        # flow -> (highest sequence seen, its sent_at_s)
        self._frontier: dict[str, tuple[int, float]] = {}

    def attach(
        self, harness: "OverlayHarness", schedule: FaultSchedule | None = None
    ) -> "InvariantChecker":
        """Start observing; taps every node's delivery hook."""
        require(self._harness is None, "invariant checker is already attached")
        self._harness = harness
        if schedule is not None:
            self._schedule = schedule
        for node in harness.nodes.values():
            node.delivery_taps.append(self._on_delivery)
        return self

    @property
    def ok(self) -> bool:
        """Whether no invariant has been violated so far."""
        return not self.violations

    def assert_ok(self) -> None:
        """Raise :class:`InvariantViolation` if anything was breached."""
        if self.violations:
            lines = [
                f"  t={violation.at_s:.3f}s [{violation.invariant}] "
                f"{violation.detail}"
                for violation in self.violations
            ]
            raise InvariantViolation(
                f"{len(self.violations)} invariant violation(s):\n"
                + "\n".join(lines)
            )

    def _flag(self, at_s: float, invariant: str, detail: str) -> None:
        violation = Violation(at_s, invariant, detail)
        self.violations.append(violation)
        for tap in self.taps:
            tap(violation)

    # -- per-delivery checks -------------------------------------------------------

    def _on_delivery(
        self, node: "OverlayNode", packet: "DataPacket", now: float
    ) -> None:
        key = (node.node_id, packet.flow, packet.sequence)
        earlier = self._delivered.get(key)
        if earlier is not None:
            self._flag(
                now,
                "no-duplicate-delivery",
                f"{packet.flow} seq {packet.sequence} delivered again at "
                f"{node.node_id} (first at t={earlier:.3f}s)",
            )
        else:
            self._delivered[key] = now
        if not node.running:
            self._flag(
                now,
                "no-delivery-while-crashed",
                f"{node.node_id} delivered {packet.flow} seq "
                f"{packet.sequence} while stopped",
            )
        if packet.sent_at_s > now + _CLOCK_SLACK_S:
            self._flag(
                now,
                "causality",
                f"{packet.flow} seq {packet.sequence} delivered before "
                f"it was sent ({packet.sent_at_s:.3f}s > {now:.3f}s)",
            )
        frontier = self._frontier.get(packet.flow)
        if frontier is not None:
            top_seq, top_sent = frontier
            if packet.sequence > top_seq and packet.sent_at_s < top_sent - _CLOCK_SLACK_S:
                self._flag(
                    now,
                    "sequence-monotonicity",
                    f"{packet.flow} seq {packet.sequence} was sent at "
                    f"{packet.sent_at_s:.3f}s, before seq {top_seq} "
                    f"({top_sent:.3f}s)",
                )
        if frontier is None or packet.sequence > frontier[0]:
            self._frontier[packet.flow] = (packet.sequence, packet.sent_at_s)

    # -- post-settle convergence ----------------------------------------------------

    def check_convergence(self) -> None:
        """Flag running daemons still believing faults that have cleared.

        Call after the schedule's last fault plus enough settle time for
        refresh/aging to act.  A heavy-loss LSDB claim is stale when the
        ground-truth timeline shows the edge (nearly) clean *and* the
        fault schedule blocks neither the edge nor its endpoints now.
        """
        require(self._harness is not None, "invariant checker is not attached")
        harness = self._harness
        now = harness.kernel.now
        crashed = self._schedule.crashed_nodes_at(now)
        blocked = self._schedule.blocked_edges_at(now, harness.topology)
        horizon = min(now, harness.timeline.duration_s)
        for node in harness.nodes.values():
            if not node.running:
                continue
            for edge, state in node.observed_view().items():
                if state.loss_rate < _STALE_CLAIM_LOSS:
                    continue
                if edge in blocked or edge[0] in crashed or edge[1] in crashed:
                    continue  # the claim is still true per the schedule
                truth = harness.timeline.state_at(edge, horizon)
                if truth.loss_rate >= _TRUTH_LOSS_FLOOR:
                    continue  # the claim is still true per the timeline
                self._flag(
                    now,
                    "lsdb-convergence",
                    f"{node.node_id} still believes loss "
                    f"{state.loss_rate:.2f} on {edge[0]}->{edge[1]} after "
                    f"faults cleared",
                )
