"""Executes a fault schedule against a wired overlay harness.

The injector has two halves.  The *control* half turns each fault into a
pair of kernel-scheduled callbacks (fault asserts, fault clears) so fault
timing flows through the same deterministic event queue as everything
else.  The *data* half implements the network's
:class:`~repro.overlay.network.ChaosPlane` protocol: the network asks it
whether an edge is currently blocked and what per-message effects
(duplication, reordering delay, corruption) apply to each transmission.

Per-message fault decisions are drawn from a
:class:`~repro.util.rng.DeterministicStream` keyed by the network seed,
the schedule fingerprint, the fault window, the edge, and the message
id -- so a chaos run is exactly reproducible from ``(seed, schedule)``
and two different schedules never share draws.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.chaos.faults import FaultSchedule, MessageFaults
from repro.core.graph import Edge
from repro.overlay.network import MessageEffects
from repro.util.rng import DeterministicStream
from repro.util.validation import require

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.overlay.harness import OverlayHarness

__all__ = ["ChaosInjector"]


class ChaosInjector:
    """Drives one :class:`~repro.chaos.faults.FaultSchedule` on a harness."""

    def __init__(self, harness: "OverlayHarness", schedule: FaultSchedule) -> None:
        self.harness = harness
        self.schedule = schedule
        self._stream = DeterministicStream(
            harness.network.seed, "chaos", schedule.fingerprint()
        )
        # Reference counts: overlapping partitions/blackholes may block the
        # same directed edge; it stays blocked until every fault covering
        # it has cleared.
        self._blocked: dict[Edge, int] = {}
        # Message-fault windows currently open, as (window index, fault).
        self._active_windows: list[tuple[int, MessageFaults]] = []
        #: Chronological (time, description) fault log, for reports.
        self.log: list[tuple[float, str]] = []
        self._installed = False

    # -- control half ------------------------------------------------------------

    def install(self) -> None:
        """Attach to the network and schedule every fault toggle; once only."""
        require(not self._installed, "injector is already installed")
        require(
            self.harness.network.chaos is None,
            "the harness already has a chaos plane attached",
        )
        for stall in self.schedule.stalls:
            require(
                stall.flow in self.harness.daemons,
                f"stall targets unknown flow {stall.flow!r}",
            )
        for crash in self.schedule.crashes:
            require(
                crash.node in self.harness.nodes,
                f"crash targets unknown node {crash.node!r}",
            )
        self._installed = True
        self.harness.network.chaos = self
        kernel = self.harness.kernel
        topology = self.harness.topology
        origin = kernel.now

        def at(when_s: float, action) -> None:
            kernel.schedule(max(0.0, origin + when_s - kernel.now), action)

        for crash in self.schedule.crashes:
            at(crash.start_s, lambda c=crash: self._crash(c))
            at(crash.end_s, lambda c=crash: self._restart(c))
        for fault in (*self.schedule.blackholes, *self.schedule.partitions):
            edges = fault.blocked_edges(topology)
            label = type(fault).__name__.lower()
            at(fault.start_s, lambda e=edges, f=fault, l=label: self._block(e, f, l))
            at(fault.end_s, lambda e=edges, f=fault, l=label: self._unblock(e, f, l))
        for index, window in enumerate(self.schedule.message_faults):
            at(window.start_s, lambda i=index, w=window: self._open_window(i, w))
            at(window.end_s, lambda i=index, w=window: self._close_window(i, w))
        for stall in self.schedule.stalls:
            at(stall.start_s, lambda s=stall: self._stall(s))
            at(stall.end_s, lambda s=stall: self._unstall(s))

    def _note(self, message: str) -> None:
        self.log.append((self.harness.kernel.now, message))
        obs = self.harness.obs
        if obs is not None:
            obs.metrics.counter("chaos.fault_events").inc()
            obs.tracer.instant("fault", "chaos", detail=message)

    def _crash(self, crash) -> None:
        self.harness.nodes[crash.node].stop()
        self._note(f"crash {crash.node}")

    def _restart(self, crash) -> None:
        node = self.harness.nodes[crash.node]
        if crash.cold_rejoin:
            node.rejoin()
            self._note(f"rejoin {crash.node} (cold)")
        else:
            node.start()
            self._note(f"restart {crash.node} (warm)")

    def _block(self, edges, fault, label: str) -> None:
        for edge in edges:
            self._blocked[edge] = self._blocked.get(edge, 0) + 1
        self._note(f"{label} blocks {len(edges)} edge(s)")

    def _unblock(self, edges, fault, label: str) -> None:
        for edge in edges:
            remaining = self._blocked.get(edge, 0) - 1
            if remaining <= 0:
                self._blocked.pop(edge, None)
            else:
                self._blocked[edge] = remaining
        self._note(f"{label} clears {len(edges)} edge(s)")

    def _open_window(self, index: int, window: MessageFaults) -> None:
        self._active_windows.append((index, window))
        self._note(f"message faults open (window {index})")

    def _close_window(self, index: int, window: MessageFaults) -> None:
        self._active_windows = [
            (i, w) for i, w in self._active_windows if i != index
        ]
        self._note(f"message faults close (window {index})")

    def _stall(self, stall) -> None:
        self.harness.daemons[stall.flow].stall()
        self._note(f"stall daemon for flow {stall.flow}")

    def _unstall(self, stall) -> None:
        self.harness.daemons[stall.flow].unstall()
        self._note(f"unstall daemon for flow {stall.flow}")

    # -- data half (ChaosPlane) ---------------------------------------------------

    def blocked(self, edge: Edge) -> bool:
        """Is the directed edge currently partitioned or blackholed?"""
        return self._blocked.get(edge, 0) > 0

    def message_effects(self, edge: Edge, message_id: int) -> MessageEffects:
        """Per-message duplication / reordering / corruption decisions.

        When no fault window is open every message passes clean.  Within
        windows, each effect is an independent keyed Bernoulli draw:
        duplication appends an extra copy, reordering delays the original
        copy (so later sends overtake it), and corruption damages the
        *last* copy's checksum -- the duplicate if one exists, otherwise
        the sole copy, which the receiver will then discard.
        """
        if not self._active_windows:
            return MessageEffects()
        copies = 1
        delays = [0.0]
        corrupt: set[int] = set()
        for index, window in self._active_windows:
            key = (index, edge, message_id)
            if window.duplicate_rate > 0.0 and self._stream.bernoulli(
                window.duplicate_rate, "dup", *key
            ):
                copies += 1
                delays.append(0.0)
            if window.reorder_rate > 0.0 and self._stream.bernoulli(
                window.reorder_rate, "reorder", *key
            ):
                delays[0] += window.reorder_delay_ms * (
                    1.0 + self._stream.uniform("reorder-extra", *key)
                )
            if window.corrupt_rate > 0.0 and self._stream.bernoulli(
                window.corrupt_rate, "corrupt", *key
            ):
                corrupt.add(copies - 1)
        return MessageEffects(copies, tuple(delays), frozenset(corrupt))
