"""Deterministic fault injection for the message-level overlay simulation.

The chaos subsystem composes with the existing ``EventKernel`` /
``SimNetwork`` / ``OverlayHarness`` stack: a :class:`~repro.chaos.faults.
FaultSchedule` declares *what* goes wrong and *when* (node crashes and
restarts, partitions and asymmetric blackholes, message duplication /
reordering / corruption, routing-daemon stalls); a
:class:`~repro.chaos.injector.ChaosInjector` executes the schedule
through kernel-scheduled callbacks and a chaos plane installed under the
network; an :class:`~repro.chaos.invariants.InvariantChecker` observes
the run through node taps and asserts conservation properties.

Everything is seeded: the same (seed, schedule) pair reproduces the same
faults message-for-message, so a chaos failure is a test case, not an
anecdote.
"""

from repro.chaos.faults import (
    DaemonStall,
    FaultSchedule,
    LinkBlackhole,
    MessageFaults,
    NodeCrash,
    Partition,
)
from repro.chaos.generate import ChaosSpec, generate_fault_schedule, to_events
from repro.chaos.injector import ChaosInjector
from repro.chaos.invariants import InvariantChecker, InvariantViolation, Violation

__all__ = [
    "NodeCrash",
    "LinkBlackhole",
    "Partition",
    "MessageFaults",
    "DaemonStall",
    "FaultSchedule",
    "ChaosSpec",
    "generate_fault_schedule",
    "to_events",
    "ChaosInjector",
    "InvariantChecker",
    "InvariantViolation",
    "Violation",
]
