"""Adversarial scenario families: one description, two consumers.

Each family is a small frozen parameter set that *compiles* -- purely
deterministically in ``(topology, seed)`` -- into the repository's
existing ground-truth representation, a list of
:class:`~repro.netmodel.events.ProblemEvent`.  From that single compiled
artifact two consumers are derived:

* the **analytic replay** builds a
  :class:`~repro.netmodel.conditions.ConditionTimeline` from the events'
  contributions (:meth:`CompiledScenario.timeline`);
* the **live chaos injector** gets a
  :class:`~repro.chaos.faults.FaultSchedule` whose blackholes are exactly
  the events' coalesced full-loss windows
  (:meth:`CompiledScenario.fault_schedule`, via
  :func:`repro.chaos.generate.schedule_from_events`).

Because both artifacts are pure functions of the same event list, the
overlay and the replay face the same world -- the "single world" contract
that lets E21 reconcile their per-window results instead of comparing
anecdotes.

The four families each stress a different assumption of targeted
redundancy:

* :class:`SRLGOutageFamily` -- correlated regional outages: one
  shared-risk cut (see :mod:`repro.scenarios.srlg`) takes several
  overlay links down with staggered onset and repair;
* :class:`CongestionStormFamily` -- flash-crowd storms that inflate
  queueing latency and jitter on a spreading ring of links, with *zero*
  loss (late is the only failure mode);
* :class:`DiurnalFamily` -- daily load cycles modulating background
  loss/latency over multi-day horizons, longitude-phased so trouble
  follows the sun;
* :class:`IntermittentEdgeFamily` -- poorly-connected edge links with
  on/off duty cycles and heavy-tailed (Pareto) off periods.

Families pre-net their own overlapping windows with
:func:`repro.netmodel.events.net_contributions` (max loss, additive
latency -- the same-cause policy), so the timeline only ever composes
*across* causes with its independent-drop rule.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from typing import ClassVar, Mapping

from repro.chaos.faults import FaultSchedule
from repro.chaos.generate import schedule_from_events
from repro.core.graph import Edge, NodeId, Topology
from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.netmodel.events import (
    Burst,
    EventKind,
    LinkDegradation,
    ProblemEvent,
    net_contributions,
)
from repro.scenarios.srlg import derive_srlgs, undirected_links
from repro.util.rng import DeterministicStream
from repro.util.validation import require

__all__ = [
    "ScenarioFamily",
    "SRLGOutageFamily",
    "CongestionStormFamily",
    "DiurnalFamily",
    "IntermittentEdgeFamily",
    "CompiledScenario",
]


def _event_from(
    kind: EventKind,
    location: NodeId | Edge,
    contributions: list[Contribution],
) -> ProblemEvent | None:
    """Net same-cause windows and wrap them as one event (None if empty)."""
    netted = net_contributions(contributions)
    if not netted:
        return None
    start = min(c.start_s for c in netted)
    end = max(c.end_s for c in netted)
    bursts = tuple(
        Burst(
            c.start_s,
            c.end_s - c.start_s,
            (LinkDegradation(c.edge, c.state),),
        )
        for c in netted
    )
    return ProblemEvent(
        kind=kind,
        location=location,
        start_s=start,
        duration_s=end - start,
        bursts=bursts,
    )


def _both_directions(topology: Topology, link: Edge) -> tuple[Edge, ...]:
    u, v = link
    return tuple(
        edge for edge in ((u, v), (v, u)) if topology.has_edge(*edge)
    )


class ScenarioFamily:
    """Shared behaviour of the family dataclasses (not itself a family)."""

    name: ClassVar[str]
    version: ClassVar[int] = 1

    # Subclasses are frozen dataclasses carrying a ``duration_s`` field.
    duration_s: float

    def describe(self) -> dict:
        """The canonical scenario description: family, version, params.

        This dict *is* the scenario: both the replay timeline and the
        live fault schedule are derived from its compiled events, and
        its sorted-key JSON form is the byte-identity the determinism
        tests pin.
        """
        return {
            "family": self.name,
            "version": self.version,
            "params": asdict(self),
        }

    def events(
        self, topology: Topology, seed: int
    ) -> list[ProblemEvent]:  # pragma: no cover - interface
        raise NotImplementedError

    def compile(self, topology: Topology, seed: int) -> "CompiledScenario":
        """Compile to the single-world artifact for ``(topology, seed)``."""
        require(topology.frozen, "scenario families require a frozen topology")
        return CompiledScenario(
            family_name=self.name,
            seed=int(seed),
            duration_s=self.duration_s,
            description=self.describe(),
            events=tuple(self.events(topology, seed)),
            topology=topology,
        )

    def _stream(self, seed: int) -> DeterministicStream:
        return DeterministicStream(seed, "scenario-family", self.name)


@dataclass(frozen=True)
class SRLGOutageFamily(ScenarioFamily):
    """Correlated regional outages via shared-risk link groups.

    Each episode picks one SRLG and cuts *all* of its links: onsets are
    staggered by a few seconds (a backhoe severs conduits one by one),
    repairs likewise (crews restore circuits in some order), so partition
    and heal windows overlap across the group's links -- the regime the
    coalescing in :func:`repro.chaos.generate.outage_windows` exists for.
    """

    name: ClassVar[str] = "srlg-outage"

    duration_s: float = 3600.0
    episodes: int = 2
    radius_km: float = 700.0
    min_links: int = 2
    outage_median_s: float = 60.0
    outage_sigma: float = 0.6
    onset_stagger_s: float = 8.0
    repair_stagger_s: float = 12.0
    active_fraction: float = 0.8

    def __post_init__(self) -> None:
        require(self.duration_s > 0, "duration_s must be positive")
        require(self.episodes >= 1, "episodes must be >= 1")
        require(self.outage_median_s > 0, "outage_median_s must be positive")
        require(self.onset_stagger_s >= 0, "onset_stagger_s must be >= 0")
        require(self.repair_stagger_s >= 0, "repair_stagger_s must be >= 0")
        require(
            0.0 < self.active_fraction <= 1.0,
            "active_fraction must be in (0, 1]",
        )

    @classmethod
    def for_duration(cls, duration_s: float) -> "SRLGOutageFamily":
        """Defaults scaled so short live runs and long replays both work."""
        return cls(
            duration_s=duration_s,
            episodes=max(1, round(duration_s / 2400.0)),
            outage_median_s=max(4.0, min(120.0, duration_s * 0.08)),
            onset_stagger_s=min(8.0, duration_s * 0.05),
            repair_stagger_s=min(12.0, duration_s * 0.08),
        )

    def events(self, topology: Topology, seed: int) -> list[ProblemEvent]:
        stream = self._stream(seed)
        groups = derive_srlgs(topology, self.radius_km, self.min_links)
        require(
            bool(groups),
            "topology yields no shared-risk groups "
            f"(radius_km={self.radius_km}, min_links={self.min_links})",
        )
        span = self.active_fraction * self.duration_s
        events: list[ProblemEvent] = []
        for ep in range(self.episodes):
            group = stream.choice(groups, "episode", ep, "group")
            length = min(
                4.0 * self.outage_median_s,
                max(span * 0.5, 1e-3),
                stream.lognormal(
                    self.outage_median_s, self.outage_sigma, "episode", ep, "length"
                ),
            )
            latest = max(1e-6, span - length - self.repair_stagger_s)
            start = stream.uniform_between(0.0, latest, "episode", ep, "start")
            onset_cap = min(self.onset_stagger_s, length * 0.5)
            contributions: list[Contribution] = []
            for link in group.links:
                onset = start + stream.uniform_between(
                    0.0, onset_cap, "episode", ep, link, "onset"
                )
                repair = start + length + stream.uniform_between(
                    0.0, self.repair_stagger_s, "episode", ep, link, "repair"
                )
                repair = min(repair, self.duration_s)
                if repair <= onset:
                    continue
                for edge in _both_directions(topology, link):
                    contributions.append(
                        Contribution(edge, onset, repair, LinkState(loss_rate=1.0))
                    )
            event = _event_from(
                EventKind.LINK, group.directed_edges(topology)[0], contributions
            )
            if event is not None:
                events.append(event)
        events.sort(key=lambda event: (event.start_s, repr(event.location)))
        return events


@dataclass(frozen=True)
class CongestionStormFamily(ScenarioFamily):
    """Flash-crowd congestion storms: latency inflation, zero loss.

    A storm starts at an epicenter node and spreads outwards in rings
    (ring of a link = BFS distance of its closer endpoint).  Ring ``r``
    inflates by ``peak_extra_ms * ring_decay**r``, modulated per phase
    window by a log-normal jitter multiplier; each ring additionally
    leaves an *echo* window that overlaps the spreading wave, so a
    link's queueing delay genuinely stacks -- the additive leg of the
    same-cause netting policy.
    """

    name: ClassVar[str] = "congestion-storm"

    duration_s: float = 3600.0
    storms: int = 1
    peak_extra_ms: float = 40.0
    ring_decay: float = 0.6
    max_rings: int = 3
    wave_delay_s: float = 20.0
    wave_duration_s: float = 60.0
    phase_s: float = 20.0
    jitter_sigma: float = 0.4
    active_fraction: float = 0.8

    def __post_init__(self) -> None:
        require(self.duration_s > 0, "duration_s must be positive")
        require(self.storms >= 1, "storms must be >= 1")
        require(self.peak_extra_ms > 0, "peak_extra_ms must be positive")
        require(0.0 < self.ring_decay <= 1.0, "ring_decay must be in (0, 1]")
        require(self.max_rings >= 0, "max_rings must be >= 0")
        require(self.wave_delay_s > 0, "wave_delay_s must be positive")
        require(self.wave_duration_s > 0, "wave_duration_s must be positive")
        require(self.phase_s > 0, "phase_s must be positive")
        require(
            0.0 < self.active_fraction <= 1.0,
            "active_fraction must be in (0, 1]",
        )

    @classmethod
    def for_duration(cls, duration_s: float) -> "CongestionStormFamily":
        wave_duration = max(6.0, duration_s * 0.05)
        return cls(
            duration_s=duration_s,
            storms=max(1, round(duration_s / 3000.0)),
            wave_delay_s=max(2.0, duration_s * 0.01),
            wave_duration_s=wave_duration,
            phase_s=max(2.0, wave_duration / 3.0),
        )

    def events(self, topology: Topology, seed: int) -> list[ProblemEvent]:
        stream = self._stream(seed)
        links = undirected_links(topology)
        footprint = (self.max_rings + 1) * self.wave_delay_s + self.wave_duration_s
        span = self.active_fraction * self.duration_s
        events: list[ProblemEvent] = []
        for index in range(self.storms):
            epicenter = stream.choice(topology.nodes, "storm", index, "epicenter")
            distance = self._bfs(topology, epicenter)
            start = stream.uniform_between(
                0.0, max(1e-6, span - footprint), "storm", index, "start"
            )
            contributions: list[Contribution] = []
            for ring in range(self.max_rings + 1):
                ring_links = [
                    link
                    for link in links
                    if min(distance[link[0]], distance[link[1]]) == ring
                ]
                if not ring_links:
                    continue
                base = self.peak_extra_ms * self.ring_decay**ring
                wave_start = start + ring * self.wave_delay_s
                contributions.extend(
                    self._wave(
                        stream, topology, index, ring, ring_links, wave_start, base
                    )
                )
                # Echo: the next ring's onset reflects load back onto this
                # ring's links, overlapping the primary wave above.
                echo_start = start + (ring + 1) * self.wave_delay_s
                echo_end = min(
                    echo_start + self.wave_duration_s * 0.5, self.duration_s
                )
                if echo_end > echo_start:
                    echo_state = LinkState(
                        extra_latency_ms=base * self.ring_decay * 0.5
                    )
                    for link in ring_links:
                        for edge in _both_directions(topology, link):
                            contributions.append(
                                Contribution(edge, echo_start, echo_end, echo_state)
                            )
            event = _event_from(EventKind.LATENCY, epicenter, contributions)
            if event is not None:
                events.append(event)
        events.sort(key=lambda event: (event.start_s, repr(event.location)))
        return events

    def _wave(
        self,
        stream: DeterministicStream,
        topology: Topology,
        storm: int,
        ring: int,
        ring_links: list[Edge],
        wave_start: float,
        base_extra_ms: float,
    ) -> list[Contribution]:
        """Phase-jittered primary wave windows for one ring."""
        contributions: list[Contribution] = []
        phases = max(1, math.ceil(self.wave_duration_s / self.phase_s))
        for phase in range(phases):
            phase_start = wave_start + phase * self.phase_s
            phase_end = min(
                phase_start + self.phase_s,
                wave_start + self.wave_duration_s,
                self.duration_s,
            )
            if phase_end <= phase_start:
                continue
            multiplier = min(
                4.0,
                stream.lognormal(
                    1.0, self.jitter_sigma, "storm", storm, "ring", ring,
                    "phase", phase,
                ),
            )
            state = LinkState(extra_latency_ms=base_extra_ms * multiplier)
            for link in ring_links:
                for edge in _both_directions(topology, link):
                    contributions.append(
                        Contribution(edge, phase_start, phase_end, state)
                    )
        return contributions

    @staticmethod
    def _bfs(topology: Topology, start: NodeId) -> dict[NodeId, int]:
        distance = {start: 0}
        frontier = [start]
        while frontier:
            next_frontier: list[NodeId] = []
            for node in frontier:
                for neighbor in topology.out_neighbors(node):
                    if neighbor not in distance:
                        distance[neighbor] = distance[node] + 1
                        next_frontier.append(neighbor)
            frontier = next_frontier
        # Unreachable nodes (impossible on a validated topology) sit at inf.
        for node in topology.nodes:
            distance.setdefault(node, len(topology.nodes))
        return distance


@dataclass(frozen=True)
class DiurnalFamily(ScenarioFamily):
    """Diurnal load cycles: longitude-phased background loss and latency.

    Time is split into buckets (``buckets_per_day`` per synthetic day);
    each bucket scores every link by a squared positive sinusoid of local
    time (phase from the link midpoint's longitude, so peaks sweep
    westward with the sun).  Only the ``max_concurrent`` highest-scoring
    links carry *loss* in any bucket -- bounding the number of
    simultaneously fractional-lossy links keeps the analytic reliability
    enumeration inside its ``max_lossy_edges`` budget even for flooding
    graphs -- while every scored link gets the latency component.
    """

    name: ClassVar[str] = "diurnal"

    duration_s: float = 259200.0  # three days
    day_s: float = 86400.0
    buckets_per_day: int = 24
    base_loss: float = 0.002
    peak_loss: float = 0.02
    peak_extra_ms: float = 6.0
    threshold: float = 0.3
    max_concurrent: int = 5
    loss_jitter: float = 0.2

    def __post_init__(self) -> None:
        require(self.duration_s > 0, "duration_s must be positive")
        require(self.day_s > 0, "day_s must be positive")
        require(self.buckets_per_day >= 1, "buckets_per_day must be >= 1")
        require(
            0.0 <= self.base_loss <= self.peak_loss <= 0.5,
            "need 0 <= base_loss <= peak_loss <= 0.5",
        )
        require(self.peak_extra_ms >= 0, "peak_extra_ms must be >= 0")
        require(0.0 < self.threshold < 1.0, "threshold must be in (0, 1)")
        require(self.max_concurrent >= 1, "max_concurrent must be >= 1")
        require(0.0 <= self.loss_jitter < 1.0, "loss_jitter must be in [0, 1)")

    @classmethod
    def for_duration(cls, duration_s: float) -> "DiurnalFamily":
        """A day never longer than half the horizon, so cycles complete."""
        return cls(
            duration_s=duration_s,
            day_s=min(86400.0, max(duration_s / 2.0, 1e-3)),
        )

    def events(self, topology: Topology, seed: int) -> list[ProblemEvent]:
        stream = self._stream(seed)
        links = undirected_links(topology)
        phase_of = {link: self._phase(topology, link) for link in links}
        bucket_s = self.day_s / self.buckets_per_day
        buckets = math.ceil(self.duration_s / bucket_s)
        per_link: dict[Edge, list[Contribution]] = {}
        for bucket in range(buckets):
            start = bucket * bucket_s
            end = min(start + bucket_s, self.duration_s)
            if end <= start:
                break
            midpoint = (start + end) / 2.0
            scored = sorted(
                (
                    (score, link)
                    for link in links
                    if (score := self._score(midpoint, phase_of[link]))
                    > self.threshold
                ),
                key=lambda pair: (-pair[0], pair[1]),
            )
            for rank, (score, link) in enumerate(scored):
                if rank < self.max_concurrent:
                    jitter = 1.0 + self.loss_jitter * (
                        stream.uniform("bucket", bucket, link, "loss") - 0.5
                    )
                    loss = min(
                        0.5,
                        max(
                            0.0,
                            self.base_loss
                            + (self.peak_loss - self.base_loss) * score * jitter,
                        ),
                    )
                else:
                    loss = 0.0
                state = LinkState(
                    loss_rate=loss,
                    extra_latency_ms=self.peak_extra_ms * score,
                )
                if state.clean:
                    continue
                for edge in _both_directions(topology, link):
                    per_link.setdefault(link, []).append(
                        Contribution(edge, start, end, state)
                    )
        events: list[ProblemEvent] = []
        for link in sorted(per_link):
            event = _event_from(EventKind.BACKGROUND, link, per_link[link])
            if event is not None:
                events.append(event)
        events.sort(key=lambda event: (event.start_s, repr(event.location)))
        return events

    def _score(self, time_s: float, phase: float) -> float:
        value = math.sin(2.0 * math.pi * (time_s / self.day_s + phase))
        return max(0.0, value) ** 2

    @staticmethod
    def _phase(topology: Topology, link: Edge) -> float:
        u, v = link
        lon_u = topology.node_attributes(u).get("lon", 0.0)
        lon_v = topology.node_attributes(v).get("lon", 0.0)
        return ((lon_u + lon_v) / 2.0) / 360.0


@dataclass(frozen=True)
class IntermittentEdgeFamily(ScenarioFamily):
    """Intermittently-connected edge links with heavy-tailed off periods.

    Candidate links touch the topology's least-connected sites (lowest
    undirected degree, ties by name) -- the links a disruption-tolerant
    deployment would call edge links.  Each selected link alternates
    exponentially-distributed up periods with Pareto-distributed (hence
    heavy-tailed, but capped) down periods of full loss.
    """

    name: ClassVar[str] = "intermittent-edge"

    duration_s: float = 3600.0
    links: int = 2
    edge_sites: int = 3
    on_mean_s: float = 300.0
    off_min_s: float = 30.0
    off_alpha: float = 1.3
    off_cap_s: float = 600.0
    active_fraction: float = 0.85
    max_cycles: int = 1000

    def __post_init__(self) -> None:
        require(self.duration_s > 0, "duration_s must be positive")
        require(self.links >= 1, "links must be >= 1")
        require(self.edge_sites >= 1, "edge_sites must be >= 1")
        require(self.on_mean_s > 0, "on_mean_s must be positive")
        require(
            0 < self.off_min_s <= self.off_cap_s,
            "need 0 < off_min_s <= off_cap_s",
        )
        require(self.off_alpha > 1.0, "off_alpha must be > 1 (finite mean)")
        require(
            0.0 < self.active_fraction <= 1.0,
            "active_fraction must be in (0, 1]",
        )
        require(self.max_cycles >= 1, "max_cycles must be >= 1")

    @classmethod
    def for_duration(cls, duration_s: float) -> "IntermittentEdgeFamily":
        off_min = max(2.0, duration_s * 0.04)
        return cls(
            duration_s=duration_s,
            on_mean_s=max(6.0, duration_s * 0.15),
            off_min_s=off_min,
            off_cap_s=max(2.0 * off_min, duration_s * 0.3),
        )

    def events(self, topology: Topology, seed: int) -> list[ProblemEvent]:
        stream = self._stream(seed)
        degree = {
            node: len(topology.adjacent_edges(node)) // 2
            for node in topology.nodes
        }
        sites = sorted(topology.nodes, key=lambda node: (degree[node], node))
        chosen_sites = set(sites[: self.edge_sites])
        candidates = [
            link
            for link in undirected_links(topology)
            if link[0] in chosen_sites or link[1] in chosen_sites
        ]
        require(
            bool(candidates),
            f"no candidate edge links adjacent to sites {sorted(chosen_sites)}",
        )
        remaining = list(candidates)
        picked: list[Edge] = []
        for index in range(min(self.links, len(remaining))):
            link = stream.choice(remaining, "pick", index)
            remaining.remove(link)
            picked.append(link)
        span = self.active_fraction * self.duration_s
        events: list[ProblemEvent] = []
        for link in sorted(picked):
            contributions: list[Contribution] = []
            t = 0.0
            for cycle in range(self.max_cycles):
                t += stream.exponential(self.on_mean_s, link, cycle, "on")
                if t >= span:
                    break
                u = stream.uniform(link, cycle, "off")
                off = min(
                    self.off_cap_s,
                    self.off_min_s * (1.0 - u) ** (-1.0 / self.off_alpha),
                )
                end = min(t + off, span)
                if end > t:
                    for edge in _both_directions(topology, link):
                        contributions.append(
                            Contribution(edge, t, end, LinkState(loss_rate=1.0))
                        )
                t = end
            event = _event_from(EventKind.LINK, link, contributions)
            if event is not None:
                events.append(event)
        events.sort(key=lambda event: (event.start_s, repr(event.location)))
        return events


@dataclass(frozen=True, eq=False)
class CompiledScenario:
    """The single-world artifact: one description, its events, both views."""

    family_name: str
    seed: int
    duration_s: float
    description: Mapping[str, object]
    events: tuple[ProblemEvent, ...]
    topology: Topology

    def description_json(self) -> str:
        """Canonical JSON form of the description (the byte identity)."""
        return json.dumps(self.description, sort_keys=True, separators=(",", ":"))

    def contributions(self) -> list[Contribution]:
        """Every event's condition-timeline contributions."""
        result: list[Contribution] = []
        for event in self.events:
            result.extend(event.contributions())
        return result

    def timeline(self, horizon_s: float | None = None) -> ConditionTimeline:
        """Compile the analytic-replay view of this world.

        ``horizon_s`` may exceed the family duration (live runs query the
        timeline slightly past the traffic window); contributions are
        clipped to the horizon either way.
        """
        horizon = self.duration_s if horizon_s is None else float(horizon_s)
        return ConditionTimeline(self.topology, horizon, self.contributions())

    def fault_schedule(self) -> FaultSchedule:
        """Derive the live-injector view of this world (bitwise stable)."""
        return schedule_from_events(self.events, self.topology)
