"""Per-event-window reconciliation between live chaos and analytic replay.

The single-world contract (one compiled scenario drives both the live
overlay and the interval replay) is only worth anything if the two
executions can be *checked* against each other.  Two checks live here:

* :func:`check_world_consistency` -- structural: at every compiled
  timeline segment, the derived fault schedule blocks an edge exactly
  when the timeline says the edge is at full loss.  This is the SRLG
  partition/heal-overlap invariant: staggered, overlapping cut windows
  must coalesce identically on both sides.

* :func:`reconcile` -- behavioural: per event window, the live run's
  observed on-time fraction (from the transport layer's per-packet log)
  is compared against the replay's expected on-time probability
  (overlap-weighted over its constant-condition windows).  The
  documented tolerance is ``atol + z * sqrt(p*(1-p)/n)``: a binomial
  sampling term for ``n`` live packets around expectation ``p``, plus a
  systematic allowance ``atol`` for control-plane dynamics the analytic
  model folds into a single detection delay (hello timeouts, LSA
  propagation, probe backoff).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.chaos.generate import FULL_LOSS
from repro.netmodel.events import ProblemEvent
from repro.scenarios.families import CompiledScenario
from repro.simulation.results import WindowRecord
from repro.util.validation import require

__all__ = [
    "WindowReconciliation",
    "event_windows",
    "expected_on_time",
    "reconcile",
    "check_world_consistency",
]

#: Systematic allowance for live control-plane dynamics (see module doc).
DEFAULT_ATOL = 0.15
#: Binomial z-score for the sampling term of the tolerance.
DEFAULT_Z = 3.0


@dataclass(frozen=True)
class WindowReconciliation:
    """One event window's live-vs-replay comparison."""

    start_s: float
    end_s: float
    sent: int
    delivered: int
    observed_on_time: float
    expected_on_time: float
    tolerance: float

    @property
    def ok(self) -> bool:
        """True when the live observation sits inside the tolerance band."""
        return abs(self.observed_on_time - self.expected_on_time) <= self.tolerance


def event_windows(
    events: Iterable[ProblemEvent],
    horizon_s: float,
    guard_s: float = 0.5,
) -> list[tuple[float, float]]:
    """The scenario's event spans as reconciliation windows.

    Each event contributes its ``[start, end + guard]`` span clipped to
    ``[0, horizon]`` (the guard catches packets sent just before repair
    that are still in flight).  Overlapping windows are merged so every
    packet is scored at most once.
    """
    require(horizon_s > 0, "horizon_s must be positive")
    require(guard_s >= 0, "guard_s must be >= 0")
    spans = []
    for event in events:
        start = max(0.0, event.start_s)
        end = min(horizon_s, event.end_s + guard_s)
        if end > start:
            spans.append((start, end))
    spans.sort()
    merged: list[list[float]] = []
    for start, end in spans:
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return [(start, end) for start, end in merged]


def expected_on_time(
    records: Sequence[WindowRecord], start_s: float, end_s: float
) -> float:
    """Overlap-weighted mean on-time probability over ``[start, end)``.

    Normalised by the covered length, so partial record coverage (e.g. a
    replay horizon shorter than the window guard) does not bias the
    expectation toward zero.  A window no record touches counts as fully
    on time (the replay saw clean conditions there).
    """
    require(end_s > start_s, "window must have positive length")
    covered = 0.0
    weighted = 0.0
    for record in records:
        overlap = min(end_s, record.end_s) - max(start_s, record.start_s)
        if overlap > 0:
            covered += overlap
            weighted += overlap * record.on_time_probability
    if covered <= 0.0:
        return 1.0
    return weighted / covered


def reconcile(
    send_times_s: Sequence[float],
    deliveries: Sequence[tuple[float, float]],
    records: Sequence[WindowRecord],
    windows: Sequence[tuple[float, float]],
    deadline_ms: float,
    atol: float = DEFAULT_ATOL,
    z: float = DEFAULT_Z,
) -> list[WindowReconciliation]:
    """Score the live packet log against the replay, one row per window.

    ``send_times_s`` and ``deliveries`` come from the live
    :class:`~repro.overlay.transport.FlowReport` (``deliveries`` holds
    ``(sent_at_s, latency_ms)`` pairs); ``records`` from a replay run
    with ``collect_windows=True``.  Windows in which no live packet was
    sent are skipped -- there is nothing to compare.
    """
    require(deadline_ms > 0, "deadline_ms must be positive")
    rows: list[WindowReconciliation] = []
    for start, end in windows:
        sent = sum(1 for t in send_times_s if start <= t < end)
        if sent == 0:
            continue
        in_window = [
            (sent_at, latency)
            for sent_at, latency in deliveries
            if start <= sent_at < end
        ]
        on_time = sum(1 for _, latency in in_window if latency <= deadline_ms)
        expected = expected_on_time(records, start, end)
        spread = math.sqrt(max(expected * (1.0 - expected), 0.0) / sent)
        rows.append(
            WindowReconciliation(
                start_s=start,
                end_s=end,
                sent=sent,
                delivered=len(in_window),
                observed_on_time=on_time / sent,
                expected_on_time=expected,
                tolerance=atol + z * spread,
            )
        )
    return rows


def check_world_consistency(compiled: CompiledScenario) -> list[str]:
    """Verify schedule and timeline describe the same world; [] == clean.

    Samples the midpoint of every compiled per-edge timeline segment and
    requires the derived fault schedule to block the edge exactly when
    the segment is at full loss.  Because the schedule coalesces
    overlapping and zero-gap outage windows, this holds through SRLG
    partition/heal overlaps or it returns a discrepancy per segment.
    """
    schedule = compiled.fault_schedule()
    timeline = compiled.timeline()
    discrepancies: list[str] = []
    for edge in compiled.topology.edges:
        for start, end, state in timeline.edge_segments(edge):
            midpoint = (start + end) / 2.0
            blocked = edge in schedule.blocked_edges_at(midpoint, compiled.topology)
            full = state.loss_rate >= FULL_LOSS
            if blocked != full:
                discrepancies.append(
                    f"{edge}: at t={midpoint:.3f}s schedule says "
                    f"{'blocked' if blocked else 'open'} but timeline loss is "
                    f"{state.loss_rate:.6f}"
                )
    return discrepancies
