"""Drive a compiled scenario through the live overlay.

``run_live_family`` is the live half of the single-world contract: the
harness's :class:`~repro.overlay.network.SimNetwork` consumes the
scenario's compiled condition timeline (per-packet loss draws, latency
inflation), while the chaos injector executes the *derived* fault
schedule -- the same full-loss windows, expressed as blackholes, so the
injector's bookkeeping and the invariant checker see the outage exactly
where the timeline puts it.  The analytic half is
``run_replay(topology, compiled.timeline(), ...)``; E21 reconciles the
two per event window (:mod:`repro.scenarios.reconcile`).
"""

from __future__ import annotations

from typing import Sequence

from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.overlay.harness import OverlayHarness, build_overlay
from repro.scenarios.families import CompiledScenario
from repro.util.validation import require

__all__ = ["run_live_family"]


def run_live_family(
    compiled: CompiledScenario,
    flows: Sequence[FlowSpec],
    service: ServiceSpec,
    scheme: str,
    seed: int = 0,
    update_interval_s: float = 0.5,
    obs: object | None = None,
) -> OverlayHarness:
    """Run one scheme through the compiled scenario's live world.

    Returns the finished harness: per-flow reports in ``.reports`` (with
    the per-packet log reconciliation needs), invariant verdicts in
    ``.invariants.violations`` (convergence already checked).  The
    timeline is compiled one second past the traffic window because
    in-flight packets and the convergence check query slightly past the
    run end.
    """
    require(bool(flows), "a live scenario run needs at least one flow")
    timeline = compiled.timeline(horizon_s=compiled.duration_s + 1.0)
    harness = build_overlay(
        compiled.topology,
        timeline,
        flows,
        service,
        scheme,
        seed=seed,
        update_interval_s=update_interval_s,
        obs=obs,
    )
    harness.start()
    harness.run(compiled.duration_s, faults=compiled.fault_schedule())
    harness.stop_traffic()
    harness.invariants.check_convergence()
    return harness
