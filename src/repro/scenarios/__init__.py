"""Adversarial scenario families -- one world for chaos and replay.

The paper's claim is about behaviour under *problematic network
conditions*; this package supplies problematic conditions beyond the
source/destination-concentrated mix of :mod:`repro.netmodel.scenarios`:
correlated regional outages (shared-risk link groups), flash-crowd
congestion storms, diurnal load cycles, and intermittently-connected
edge links.

Every family compiles -- deterministically in ``(topology, seed)`` --
to one :class:`~repro.scenarios.families.CompiledScenario`, from which
both the analytic replay timeline and the live chaos fault schedule are
derived.  :mod:`repro.scenarios.reconcile` checks the two executions
against each other per event window.
"""

from repro.scenarios.families import (
    CompiledScenario,
    CongestionStormFamily,
    DiurnalFamily,
    IntermittentEdgeFamily,
    ScenarioFamily,
    SRLGOutageFamily,
)
from repro.scenarios.live import run_live_family
from repro.scenarios.reconcile import (
    WindowReconciliation,
    check_world_consistency,
    event_windows,
    expected_on_time,
    reconcile,
)
from repro.scenarios.registry import (
    FAMILY_NAMES,
    compile_family,
    family_names,
    make_family,
)
from repro.scenarios.srlg import SharedRiskGroup, derive_srlgs, undirected_links

__all__ = [
    "CompiledScenario",
    "CongestionStormFamily",
    "DiurnalFamily",
    "IntermittentEdgeFamily",
    "ScenarioFamily",
    "SRLGOutageFamily",
    "SharedRiskGroup",
    "WindowReconciliation",
    "FAMILY_NAMES",
    "check_world_consistency",
    "compile_family",
    "derive_srlgs",
    "event_windows",
    "expected_on_time",
    "family_names",
    "make_family",
    "reconcile",
    "run_live_family",
    "undirected_links",
]
