"""Shared-risk link groups derived from topology geography.

Overlay links are logical, but they ride physical conduits: several
overlay links whose geographic midpoints sit close together plausibly
share fiber, a landing station, or a regional power grid.  A *shared-risk
link group* (SRLG) names such a bundle; one backbone event (cut,
blackout, flood) takes the whole group down roughly together.

``derive_srlgs`` clusters the topology's undirected links by the
great-circle distance between their midpoints.  The derivation is a pure
function of the frozen topology (greedy over sorted links, no RNG), so
every scenario seed sees the same groups and only the *choice* of group
and the outage timing are seeded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import Edge, NodeId, Topology
from repro.netmodel.geo import great_circle_km
from repro.util.validation import require

__all__ = ["SharedRiskGroup", "derive_srlgs", "undirected_links"]


@dataclass(frozen=True)
class SharedRiskGroup:
    """A bundle of undirected links presumed to share physical risk."""

    name: str
    links: tuple[Edge, ...]  # canonical (u, v) with u < v, sorted
    center: tuple[float, float]  # (lat, lon) of the seed link's midpoint

    def __post_init__(self) -> None:
        require(bool(self.links), "a shared-risk group needs at least one link")
        for u, v in self.links:
            require(u < v, f"group links must be canonical (u < v), got {(u, v)!r}")

    @property
    def nodes(self) -> frozenset[NodeId]:
        """Every node touched by a group link."""
        touched: set[NodeId] = set()
        for edge in self.links:
            touched.update(edge)
        return frozenset(touched)

    def directed_edges(self, topology: Topology) -> tuple[Edge, ...]:
        """Both directions of every group link present in ``topology``."""
        edges = []
        for u, v in self.links:
            for edge in ((u, v), (v, u)):
                if topology.has_edge(*edge):
                    edges.append(edge)
        return tuple(sorted(edges))


def undirected_links(topology: Topology) -> tuple[Edge, ...]:
    """Canonical undirected link set: sorted ``(u, v)`` pairs with u < v."""
    pairs = {tuple(sorted(link.edge)) for link in topology.iter_links()}
    return tuple(sorted(pairs))  # type: ignore[arg-type]


def _midpoint(topology: Topology, link: Edge) -> tuple[float, float]:
    u, v = link
    a = topology.node_attributes(u)
    b = topology.node_attributes(v)
    require(
        "lat" in a and "lon" in a and "lat" in b and "lon" in b,
        f"SRLG derivation needs lat/lon on both endpoints of {link!r}",
    )
    return ((a["lat"] + b["lat"]) / 2.0, (a["lon"] + b["lon"]) / 2.0)


def derive_srlgs(
    topology: Topology,
    radius_km: float = 700.0,
    min_links: int = 2,
) -> tuple[SharedRiskGroup, ...]:
    """Greedy geographic clustering of undirected links into SRLGs.

    Links are visited in sorted order; each unassigned link seeds a group
    and absorbs every other unassigned link whose midpoint lies within
    ``radius_km`` (great circle) of the seed's midpoint.  Groups smaller
    than ``min_links`` are dropped -- a lone link is not a *shared* risk.
    Deterministic in the topology alone.
    """
    require(radius_km > 0, "radius_km must be positive")
    require(min_links >= 1, "min_links must be >= 1")
    links = undirected_links(topology)
    midpoints = {link: _midpoint(topology, link) for link in links}
    assigned: set[Edge] = set()
    groups: list[SharedRiskGroup] = []
    for seed_link in links:
        if seed_link in assigned:
            continue
        center = midpoints[seed_link]
        members = [
            link
            for link in links
            if link not in assigned
            and great_circle_km(*center, *midpoints[link]) <= radius_km
        ]
        assigned.update(members)
        if len(members) < min_links:
            continue
        name = f"srlg-{seed_link[0]}-{seed_link[1]}".lower()
        groups.append(
            SharedRiskGroup(name=name, links=tuple(members), center=center)
        )
    return tuple(groups)
