"""Named registry of adversarial scenario families.

The CLI (``--scenario-family``), the serve daemon, CI's fast lane and
the E21 bench all address families by these names; unknown names fail
with the same one-line error style as the scenario presets.
"""

from __future__ import annotations

from repro.core.graph import Topology
from repro.scenarios.families import (
    CompiledScenario,
    CongestionStormFamily,
    DiurnalFamily,
    IntermittentEdgeFamily,
    ScenarioFamily,
    SRLGOutageFamily,
)
from repro.util.validation import require

__all__ = ["FAMILY_NAMES", "family_names", "make_family", "compile_family"]

_FAMILIES: dict[str, type[ScenarioFamily]] = {
    family.name: family
    for family in (
        SRLGOutageFamily,
        CongestionStormFamily,
        DiurnalFamily,
        IntermittentEdgeFamily,
    )
}

FAMILY_NAMES: tuple[str, ...] = tuple(sorted(_FAMILIES))


def family_names() -> tuple[str, ...]:
    """All registered family names, sorted."""
    return FAMILY_NAMES


def make_family(name: str, duration_s: float) -> ScenarioFamily:
    """Instantiate a family with duration-scaled defaults."""
    require(
        name in _FAMILIES,
        f"unknown scenario family {name!r}; known: {', '.join(FAMILY_NAMES)}",
    )
    return _FAMILIES[name].for_duration(float(duration_s))


def compile_family(
    topology: Topology, name: str, seed: int, duration_s: float
) -> CompiledScenario:
    """One-call compile: name + seed + duration -> single-world artifact."""
    return make_family(name, duration_s).compile(topology, seed)
