"""The observability bundle components are instrumented against.

One :class:`Observability` object carries a metrics registry, a tracer,
and a flight recorder, all sharing a clock.  Instrumented components
accept ``obs: Observability | None``; ``None`` (the default everywhere)
means *off* and costs a single identity check on the hot path.  A
constructed-but-disabled bundle degrades to the no-op singletons, so
``Observability(enabled=False)`` is also free after construction.

``export`` writes the standard artifact set into one directory:

* ``trace.json`` -- Chrome ``trace_event`` JSON (chrome://tracing, Perfetto);
* ``spans.jsonl`` -- the loss-free span log;
* ``manifest.json`` -- the run manifest;
* ``flight_<k>.json`` -- any flight-recorder snapshots not yet dumped.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Mapping

from repro.obs.export import write_chrome_trace, write_spans_jsonl
from repro.obs.manifest import RunManifest
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import NULL_TRACER, FlightRecorder, Tracer

__all__ = ["Observability", "NULL_OBS"]

#: A flow whose on-time fraction falls below this triggers the recorder.
DEFAULT_HEALTH_THRESHOLD = 0.9


class Observability:
    """Metrics + tracer + flight recorder behind one on/off switch."""

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        flight_capacity: int = 256,
        flight_dir: str | Path | None = None,
        max_spans: int = 500_000,
    ) -> None:
        self.enabled = enabled
        if enabled:
            self.metrics: MetricsRegistry = MetricsRegistry()
            self.flight: FlightRecorder | None = FlightRecorder(
                flight_capacity, dump_dir=flight_dir
            )
            self.tracer: Tracer = Tracer(
                clock, recorder=self.flight, max_spans=max_spans
            )
        else:
            self.metrics = NULL_REGISTRY
            self.flight = None
            self.tracer = NULL_TRACER

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Re-point the tracer's clock (fresh kernel per scheme run)."""
        if self.enabled:
            self.tracer.set_clock(clock)

    # -- health-triggered flight dumps ---------------------------------------------

    def check_flow_health(
        self,
        on_time_fractions: Mapping[str, float],
        threshold: float = DEFAULT_HEALTH_THRESHOLD,
    ) -> list[str]:
        """Trigger a flight snapshot for every flow below ``threshold``.

        Returns the unhealthy flow names (empty when all flows are fine
        or observability is off).
        """
        if not self.enabled:
            return []
        unhealthy = sorted(
            name
            for name, fraction in on_time_fractions.items()
            if fraction < threshold
        )
        for name in unhealthy:
            self.metrics.counter("obs.flight.unhealthy_flows").inc()
            self.flight.trigger(
                f"flow {name} on-time fraction "
                f"{on_time_fractions[name]:.3f} < {threshold:.3f}",
                at_s=self.tracer.now(),
            )
        return unhealthy

    # -- artifact export -----------------------------------------------------------

    def export(self, out_dir: str | Path, manifest: RunManifest) -> dict[str, Path]:
        """Write trace.json / spans.jsonl / manifest.json (+ flight dumps).

        The manifest's ``metrics``, ``spans``, and ``flight`` sections are
        filled in from the live registry/tracer/recorder before writing,
        so callers only supply the run-identity fields.
        """
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        paths: dict[str, Path] = {}
        if not self.enabled:
            manifest.write(out / "manifest.json")
            paths["manifest"] = out / "manifest.json"
            return paths
        self.tracer.finalize()
        manifest.metrics = dict(self.metrics.summarize())
        manifest.spans = {
            "recorded": len(self.tracer.spans),
            "dropped": self.tracer.dropped,
            "trace_id": self.tracer.trace_id,
        }
        manifest.flight = {"triggers": self.flight.triggers}
        paths["trace"] = write_chrome_trace(self.tracer.spans, out / "trace.json")
        paths["spans"] = write_spans_jsonl(self.tracer.spans, out / "spans.jsonl")
        paths["manifest"] = manifest.write(out / "manifest.json")
        for dumped in self.flight.dump_pending(out):
            paths[dumped.stem] = dumped
        return paths


#: Process-wide disabled bundle (no-op registry and tracer).
NULL_OBS = Observability(enabled=False)
