"""The per-run manifest: everything needed to identify and compare runs.

A manifest captures what was run (seed, schemes, flows, topology
fingerprint), how it executed (execution-engine telemetry, including
cache hits), and what was measured (the metrics registry's summaries).
It is the machine-readable counterpart of the printed tables -- the
bench suite writes one next to every ``BENCH_<exp>.json`` and the CLI
writes one per traced run, so performance trajectories can be compared
across commits without scraping stdout.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.core.graph import Topology
from repro.exec.hashing import _topology_fingerprint, stable_hash
from repro.util.validation import require

__all__ = [
    "MANIFEST_VERSION",
    "RunManifest",
    "topology_fingerprint",
    "read_manifest",
]

MANIFEST_VERSION = 1


def topology_fingerprint(topology: Topology) -> str:
    """Short stable digest of a topology's nodes, links, and attributes."""
    return stable_hash(_topology_fingerprint(topology))[:16]


@dataclass
class RunManifest:
    """Identity + execution + measurement record of one run."""

    label: str
    seed: int | None = None
    schemes: tuple[str, ...] = ()
    flows: tuple[str, ...] = ()
    topology: str | None = None  # fingerprint (see topology_fingerprint)
    duration_s: float | None = None
    exec: dict | None = None  # ExecTelemetry.to_dict(), cache hits included
    metrics: dict = field(default_factory=dict)  # MetricsRegistry.summarize()
    spans: dict = field(default_factory=dict)  # {"recorded": n, "dropped": n}
    flight: dict = field(default_factory=dict)  # {"triggers": n}
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe form (what ``manifest.json`` holds)."""
        return {
            "manifest_version": MANIFEST_VERSION,
            "label": self.label,
            "seed": self.seed,
            "schemes": list(self.schemes),
            "flows": list(self.flows),
            "topology": self.topology,
            "duration_s": self.duration_s,
            "exec": self.exec,
            "metrics": self.metrics,
            "spans": self.spans,
            "flight": self.flight,
            "extra": self.extra,
        }

    def write(self, path: str | Path) -> Path:
        """Write the manifest as pretty-printed JSON."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=1, sort_keys=True))
        return path

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunManifest":
        """Rebuild a manifest from its JSON form (raises on bad shape)."""
        require(
            int(payload.get("manifest_version", -1)) == MANIFEST_VERSION,
            f"unsupported manifest version {payload.get('manifest_version')!r}",
        )
        return cls(
            label=str(payload["label"]),
            seed=payload.get("seed"),
            schemes=tuple(payload.get("schemes") or ()),
            flows=tuple(payload.get("flows") or ()),
            topology=payload.get("topology"),
            duration_s=payload.get("duration_s"),
            exec=payload.get("exec"),
            metrics=dict(payload.get("metrics") or {}),
            spans=dict(payload.get("spans") or {}),
            flight=dict(payload.get("flight") or {}),
            extra=dict(payload.get("extra") or {}),
        )


def read_manifest(path: str | Path) -> RunManifest:
    """Load ``manifest.json`` (one-line ValueError on anything malformed)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not a JSON manifest ({error})") from error
    require(isinstance(payload, dict), f"{path}: not a JSON object")
    try:
        return RunManifest.from_dict(payload)
    except KeyError as error:
        raise ValueError(f"{path}: manifest is missing {error}") from error
