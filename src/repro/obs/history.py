"""Append-only bench history and statistical regression tracking.

The benchmark suite writes one machine-readable ``BENCH_<exp>.json``
artifact per experiment (see ``benchmarks/common.py``).  This module
turns those per-run artifacts into a durable record:

* :func:`ingest` appends each artifact as one JSONL entry to a
  per-branch history file (``<root>/<branch>.jsonl``), stamped with the
  commit and wall-clock time.  The file is append-only in content --
  entries are only ever added, so an entry's position is its age -- but
  physically each append rewrites via temp file + fsync + atomic rename,
  so a crash can never leave a torn history under the final name.
* :func:`check` compares the newest entry of every workload against the
  trailing window of earlier entries *of the same workload* (same
  experiment, weeks, seed, workers, cache mode -- comparing a 2-week
  run against a 4-week run would be noise by construction) and flags
  metrics whose latest value moved beyond the noise band.

The noise band is ``max(rel_threshold * |median|, mad_factor * MAD)``:
the relative floor keeps micro-benchmarks with near-zero variance from
flagging every run, the MAD term adapts to genuinely noisy metrics.
Whether a shift is a *regression* depends on the metric's direction,
inferred from its name (``*_s``, ``*overhead*``... are
higher-is-worse; ``*availability*``, ``*speedup*``... are
lower-is-worse); metrics with no recognisable direction -- or a
conflicting one -- are still reported, as neutral ``shift`` findings.

CI wires ``repro bench history check --annotate`` as a soft-fail step:
regressions become GitHub warning annotations on the run, not build
failures, because a wall-clock shift on shared runners needs a human
eye before it blocks anyone.
"""

from __future__ import annotations

import json
import math
import os
import re
import tempfile
import time
from pathlib import Path
from statistics import median
from typing import Iterable

from repro.util.validation import require

__all__ = [
    "HistoryEntry",
    "check",
    "direction",
    "format_finding",
    "github_annotation",
    "history_path",
    "ingest",
    "read_history",
    "summarize",
]

HISTORY_VERSION = 1

#: Fewest prior same-workload entries before a comparison is attempted.
MIN_BASELINE = 3

#: Default trailing-window size for the baseline.
DEFAULT_WINDOW = 20

#: Default relative floor of the noise band (5 % of the median).
DEFAULT_REL_THRESHOLD = 0.05

#: Default multiplier on the median absolute deviation.
DEFAULT_MAD_FACTOR = 3.0

#: Substrings marking a metric where *larger* is *worse* (durations,
#: overheads, failure seconds).
_HIGHER_IS_WORSE = (
    "_s", "overhead", "wall", "lost", "late", "unavailable", "evict",
)

#: Substrings marking a metric where *smaller* is *worse*.
_LOWER_IS_WORSE = (
    "availability", "speedup", "hit_rate", "coverage", "fraction",
    "on_time", "samples",
)

HistoryEntry = dict


def direction(metric: str) -> str | None:
    """``"higher_is_worse"`` / ``"lower_is_worse"`` / ``None`` (unknown).

    Inferred from the metric name; a name matching both vocabularies
    (e.g. an ``on_time_s`` duration) is ambiguous and returns ``None``
    rather than guessing.
    """
    name = metric.lower()
    higher = name.endswith("_s") or any(
        token in name for token in _HIGHER_IS_WORSE if token != "_s"
    )
    lower = any(token in name for token in _LOWER_IS_WORSE)
    if higher and not lower:
        return "higher_is_worse"
    if lower and not higher:
        return "lower_is_worse"
    return None


def history_path(root: str | Path, branch: str) -> Path:
    """The per-branch history file (branch name sanitised for the fs)."""
    require(bool(branch), "branch name must be non-empty")
    safe = re.sub(r"[^a-zA-Z0-9._-]", "_", branch)
    return Path(root) / f"{safe}.jsonl"


def _numeric_metrics(metrics: dict) -> dict[str, float]:
    """Finite numeric metrics only; bools, strings, NaNs are dropped."""
    out: dict[str, float] = {}
    for name, value in metrics.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if not math.isfinite(value):
            continue
        out[name] = float(value)
    return out


def _workload_key(entry: dict) -> tuple:
    return (
        entry.get("experiment"),
        entry.get("weeks"),
        entry.get("seed"),
        entry.get("workers"),
        entry.get("use_cache"),
    )


def ingest(
    bench_dir: str | Path,
    root: str | Path,
    branch: str,
    commit: str = "",
    recorded_at: float | None = None,
) -> list[HistoryEntry]:
    """Append every ``BENCH_*.json`` under ``bench_dir`` to the history.

    Returns the entries appended (possibly empty when the directory has
    no artifacts).  Artifacts whose ``metrics`` carry no numeric values
    are still recorded -- a run that produced an artifact happened, and
    the gap is itself information.
    """
    bench_dir = Path(bench_dir)
    require(
        bench_dir.is_dir(),
        f"bench artifact directory {bench_dir} does not exist",
    )
    stamp = time.time() if recorded_at is None else float(recorded_at)
    entries: list[HistoryEntry] = []
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        artifact = json.loads(path.read_text())
        require(
            isinstance(artifact, dict) and "experiment" in artifact,
            f"{path} is not a bench artifact (no experiment field)",
        )
        entries.append(
            {
                "version": HISTORY_VERSION,
                "branch": branch,
                "commit": commit,
                "recorded_at": round(stamp, 3),
                "experiment": artifact["experiment"],
                "weeks": artifact.get("weeks"),
                "seed": artifact.get("seed"),
                "workers": artifact.get("workers"),
                "use_cache": artifact.get("use_cache"),
                "metrics": _numeric_metrics(artifact.get("metrics") or {}),
            }
        )
    if entries:
        target = history_path(root, branch)
        target.parent.mkdir(parents=True, exist_ok=True)
        # Crash-safe append: rewrite to a temp file in the same directory,
        # fsync, then atomically rename over the original.  A crash leaves
        # either the old complete history or the new complete history --
        # never a torn trailing line under the final name.
        existing = target.read_text() if target.exists() else ""
        if existing and not existing.endswith("\n"):
            existing += "\n"  # heal a torn tail left by a pre-atomic writer
        descriptor, temp_name = tempfile.mkstemp(
            dir=target.parent, prefix=".tmp-", suffix=".jsonl"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as stream:
                stream.write(existing)
                for entry in entries:
                    stream.write(json.dumps(entry, sort_keys=True) + "\n")
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(temp_name, target)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
    return entries


def read_history(root: str | Path, branch: str) -> list[HistoryEntry]:
    """All entries of one branch, oldest first (file order).

    Undecodable lines (a torn tail from a crashed non-atomic writer, a
    partial copy) are skipped rather than crashing the check: losing one
    data point is recoverable, an unusable history file is not.
    """
    target = history_path(root, branch)
    if not target.exists():
        return []
    entries = []
    for line in target.read_text().splitlines():
        if not line.strip():
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return entries


def _mad(values: list[float], center: float) -> float:
    return median([abs(value - center) for value in values])


def check(
    root: str | Path,
    branch: str,
    window: int = DEFAULT_WINDOW,
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    mad_factor: float = DEFAULT_MAD_FACTOR,
) -> list[dict]:
    """Findings for the newest entry of every workload on ``branch``.

    Each finding describes one metric of one experiment whose latest
    value left the noise band: ``kind`` is ``regression`` (moved in the
    worse direction), ``improvement`` (moved in the better direction),
    or ``shift`` (direction unknown).  Metrics inside the band and
    workloads with fewer than :data:`MIN_BASELINE` prior entries yield
    no finding.
    """
    require(window >= MIN_BASELINE, f"window must be >= {MIN_BASELINE}")
    require(rel_threshold >= 0.0, "rel_threshold must be >= 0")
    require(mad_factor >= 0.0, "mad_factor must be >= 0")
    groups: dict[tuple, list[HistoryEntry]] = {}
    for entry in read_history(root, branch):
        groups.setdefault(_workload_key(entry), []).append(entry)
    findings: list[dict] = []
    for key, entries in groups.items():
        if len(entries) < MIN_BASELINE + 1:
            continue
        latest = entries[-1]
        baseline = entries[-(window + 1):-1]
        for metric, value in sorted(latest["metrics"].items()):
            values = [
                e["metrics"][metric] for e in baseline if metric in e["metrics"]
            ]
            if len(values) < MIN_BASELINE:
                continue
            center = median(values)
            band = max(
                rel_threshold * abs(center), mad_factor * _mad(values, center)
            )
            delta = value - center
            if abs(delta) <= band:
                continue
            sense = direction(metric)
            if sense is None:
                kind = "shift"
            elif (delta > 0) == (sense == "higher_is_worse"):
                kind = "regression"
            else:
                kind = "improvement"
            findings.append(
                {
                    "experiment": latest["experiment"],
                    "commit": latest.get("commit", ""),
                    "metric": metric,
                    "value": value,
                    "median": center,
                    "band": band,
                    "delta": delta,
                    "direction": sense,
                    "kind": kind,
                    "baseline_n": len(values),
                }
            )
    order = {"regression": 0, "shift": 1, "improvement": 2}
    findings.sort(key=lambda f: (order[f["kind"]], f["experiment"], f["metric"]))
    return findings


def format_finding(finding: dict) -> str:
    """One human-readable line per finding."""
    rel = (
        f" ({100 * finding['delta'] / finding['median']:+.1f}%)"
        if finding["median"]
        else ""
    )
    return (
        f"{finding['kind']:<11} {finding['experiment']}/{finding['metric']}: "
        f"{finding['value']:g} vs median {finding['median']:g}"
        f"{rel}, band ±{finding['band']:g} "
        f"over {finding['baseline_n']} run(s)"
    )


def github_annotation(finding: dict) -> str:
    """The finding as a GitHub Actions workflow annotation line.

    Regressions annotate as warnings (soft-fail: visible on the run,
    not fatal to it); shifts and improvements as notices.
    """
    level = "warning" if finding["kind"] == "regression" else "notice"
    title = f"bench {finding['kind']}: {finding['experiment']}"
    return f"::{level} title={title}::{format_finding(finding)}"


def summarize(findings: Iterable[dict]) -> dict[str, int]:
    """Counts by kind, all kinds present (zeros included)."""
    counts = {"regression": 0, "shift": 0, "improvement": 0}
    for finding in findings:
        counts[finding["kind"]] += 1
    return counts
