"""repro.obs -- flight-recorder tracing, metrics, and run manifests.

The observability layer answers the questions the aggregate tables
cannot: *which link delayed which packet under which scheme*, how deep
the event queue ran, which shard the execution engine spent its wall
time on, and what the system was doing in the moments before a chaos
invariant fired.

Four pieces (see DESIGN.md S19):

* :class:`MetricsRegistry` -- counters, gauges, and fixed-bucket
  histograms with p50/p99/p999 summaries, registered by dotted name;
* :class:`Tracer` + :class:`FlightRecorder` -- hierarchical spans keyed
  off the run's clock, with a bounded ring buffer snapshotted when an
  invariant fires or a flow goes unhealthy;
* exporters -- Chrome ``trace_event`` JSON, a JSONL span log, and the
  per-run ``manifest.json``;
* :class:`Observability` -- the bundle instrumented components accept
  (``obs=None`` everywhere means off and costs one identity check).
"""

from repro.obs.export import (
    read_spans_jsonl,
    spans_to_trace_events,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.manifest import (
    MANIFEST_VERSION,
    RunManifest,
    read_manifest,
    topology_fingerprint,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.runtime import NULL_OBS, Observability
from repro.obs.trace import (
    NULL_TRACER,
    FlightRecorder,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    spans_to_relative,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "Span",
    "TraceContext",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "FlightRecorder",
    "spans_to_relative",
    "Observability",
    "NULL_OBS",
    "RunManifest",
    "MANIFEST_VERSION",
    "read_manifest",
    "topology_fingerprint",
    "spans_to_trace_events",
    "write_chrome_trace",
    "write_spans_jsonl",
    "read_spans_jsonl",
]
