"""Live terminal view of a running daemon's ``/v1/metrics`` endpoint.

``repro obs watch`` polls ``GET /v1/metrics``, parses the Prometheus
text exposition, and renders a compact dashboard: request rates
(computed from counter deltas between polls), scheduler depth and
queue-wait percentiles, warm-cache hit ratios, and on-time percentiles
of recently served evaluations.

The frame computation is pure (two parsed scrapes in, text out), so the
view is testable without a server or a terminal; only :func:`watch`
touches the clock and the screen.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping, TextIO

from repro.obs.expose import (
    Family,
    histogram_quantile,
    metric_name,
    parse_exposition,
    sample_value,
)

__all__ = ["render_frame", "watch"]

#: ANSI: clear screen + home, for the live refresh.
_CLEAR = "\x1b[2J\x1b[H"


def _value(
    families: Mapping[str, Family], dotted: str, default: float = 0.0
) -> float:
    found = sample_value(families, metric_name(dotted))
    return default if found is None else found


def _rate(
    prev: Mapping[str, Family] | None,
    curr: Mapping[str, Family],
    dotted: str,
    interval_s: float,
) -> float:
    if prev is None or interval_s <= 0:
        return 0.0
    delta = _value(curr, dotted) - _value(prev, dotted)
    return max(0.0, delta) / interval_s


def _quantiles(
    families: Mapping[str, Family], dotted: str, qs: tuple[float, ...]
) -> list[float] | None:
    family = families.get(metric_name(dotted))
    if family is None:
        return None
    answers = [histogram_quantile(family, q) for q in qs]
    if any(answer is None for answer in answers):
        return None
    return answers  # type: ignore[return-value]


def _ratio(hits: float, misses: float) -> str:
    total = hits + misses
    if total <= 0:
        return "n/a"
    return f"{hits / total:6.1%} ({int(hits)}/{int(total)})"


def render_frame(
    prev: Mapping[str, Family] | None,
    curr: Mapping[str, Family],
    interval_s: float,
) -> str:
    """One dashboard frame from the previous and current scrape."""
    lines = [
        f"repro serve  up {_value(curr, 'serve.uptime_s'):.0f}s"
        f"  (refresh {interval_s:g}s)",
        "",
        "requests        total      rate/s",
    ]
    for kind in ("accepted", "completed", "failed", "rejected"):
        dotted = f"serve.requests.{kind}"
        lines.append(
            f"  {kind:<12}{_value(curr, dotted):>8.0f}"
            f"{_rate(prev, curr, dotted, interval_s):>12.2f}"
        )
    lines.append("")
    lines.append(
        f"scheduler       active {_value(curr, 'serve.active'):.0f}"
        f"   queued {_value(curr, 'serve.queue_depth'):.0f}"
    )
    for label, dotted in (
        ("queue wait", "serve.queue_wait_s"),
        ("request wall", "serve.request_wall_s"),
    ):
        quantiles = _quantiles(curr, dotted, (0.5, 0.99))
        if quantiles is not None:
            lines.append(
                f"  {label:<14}p50 <= {quantiles[0]:.3g}s"
                f"   p99 <= {quantiles[1]:.3g}s"
            )
    lines.append("")
    lines.append("caches          hit ratio")
    lines.append(
        "  contexts      "
        + _ratio(
            _value(curr, "serve.cache.context_hits"),
            _value(curr, "serve.cache.context_misses"),
        )
    )
    lines.append(
        "  prob memo     "
        + _ratio(
            _value(curr, "serve.cache.prob_hits"),
            _value(curr, "serve.cache.prob_misses"),
        )
    )
    shards_cached = _value(curr, "serve.cache.shards_cached")
    if shards_cached:
        lines.append(f"  exec shards   {shards_cached:.0f} served from cache")
    on_time = _quantiles(curr, "serve.on_time_fraction", (0.5, 0.99))
    if on_time is not None:
        lines.append("")
        lines.append(
            f"on-time fraction (served evaluations)"
            f"   p50 <= {on_time[0]:.3g}   p99 <= {on_time[1]:.3g}"
        )
    return "\n".join(lines) + "\n"


def watch(
    fetch: Callable[[], str],
    interval_s: float = 2.0,
    iterations: int | None = None,
    out: TextIO | None = None,
    clear: bool = True,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Poll ``fetch`` (the metrics endpoint) and render frames forever.

    ``iterations`` bounds the loop for tests and one-shot use; ``None``
    runs until interrupted.  Returns 0 (so the CLI can return it).
    """
    import sys

    stream = out if out is not None else sys.stdout
    prev: dict[str, Family] | None = None
    seen = 0
    while iterations is None or seen < iterations:
        curr = parse_exposition(fetch())
        frame = render_frame(prev, curr, interval_s)
        if clear:
            stream.write(_CLEAR)
        stream.write(frame)
        stream.flush()
        prev = curr
        seen += 1
        if iterations is None or seen < iterations:
            sleep(interval_s)
    return 0
