"""Hierarchical span tracing with a bounded flight recorder.

A :class:`Span` is one named interval (or instant) on the run's clock --
simulation time for overlay runs, wall time for the execution engine.
The :class:`Tracer` records spans three ways:

* ``complete(name, ...)`` -- both endpoints known up front;
* ``instant(name, ...)`` -- a zero-duration marker;
* ``open(key, name, ...)`` / ``close(key, ...)`` -- long-lived spans
  (a packet's journey) opened in one component and closed in another,
  correlated by an explicit key so children can link to their parent.

Every finished span also lands in the :class:`FlightRecorder`, a bounded
ring buffer holding the last N spans.  ``trigger`` snapshots the ring --
the chaos invariant checker and the flow-health check call it when
something goes wrong, so the tail of activity leading up to a failure is
preserved even when the full span log would be unaffordable to keep.
"""

from __future__ import annotations

import json
import uuid
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Hashable, Mapping, Sequence

from repro.util.validation import require

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "FlightRecorder",
    "spans_to_relative",
]


@dataclass(frozen=True)
class TraceContext:
    """The cross-process trace handle: trace id + parent span id.

    This is the wire format shipped across the process-pool boundary
    (documented in DESIGN.md S22): the parent serialises its tracer's
    ``trace_id`` plus the span the remote work should hang under, the
    worker adopts it, and every worker-side span then carries the parent
    trace id -- so the merged export is one tree, not a forest of
    orphan worker traces.
    """

    trace_id: str
    parent_span_id: int | None = None

    def to_wire(self) -> dict:
        """JSON/pickle-safe form (what crosses the pool boundary)."""
        return {"trace_id": self.trace_id, "parent_span_id": self.parent_span_id}

    @classmethod
    def from_wire(cls, payload: Mapping) -> "TraceContext":
        """Rebuild a context from its wire form (raises on bad shape)."""
        trace_id = payload["trace_id"]
        require(
            isinstance(trace_id, str) and bool(trace_id),
            f"trace_id must be a non-empty string, got {trace_id!r}",
        )
        parent = payload.get("parent_span_id")
        return cls(
            trace_id=trace_id,
            parent_span_id=None if parent is None else int(parent),
        )


def spans_to_relative(spans: Sequence["Span"], base_s: float) -> list[dict]:
    """Spans as JSON-safe dicts with times relative to ``base_s``.

    The worker side of trace propagation: worker clocks (per-process
    ``perf_counter``) are not comparable across processes, so spans
    travel home as offsets from the worker's shard start and the parent
    re-bases them onto its own clock with :meth:`Tracer.graft`.
    """
    records = []
    for span in spans:
        record = span.to_dict()
        record["start_s"] = span.start_s - base_s
        if span.end_s is not None:
            record["end_s"] = span.end_s - base_s
        records.append(record)
    return records


class Span:
    """One traced interval: name, category, endpoints, free-form args."""

    __slots__ = ("span_id", "parent_id", "name", "category", "start_s", "end_s", "args")

    def __init__(
        self,
        span_id: int,
        name: str,
        category: str,
        start_s: float,
        end_s: float | None = None,
        args: dict | None = None,
        parent_id: int | None = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start_s = start_s
        self.end_s = end_s
        self.args = args or {}

    @property
    def closed(self) -> bool:
        """Whether the span's end has been recorded."""
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        """Span length (0.0 while still open)."""
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    def to_dict(self) -> dict:
        """JSON-safe form (the JSONL span-log line)."""
        record = {
            "id": self.span_id,
            "name": self.name,
            "cat": self.category,
            "start_s": self.start_s,
            "end_s": self.end_s,
        }
        if self.parent_id is not None:
            record["parent"] = self.parent_id
        if self.args:
            record["args"] = self.args
        return record

    @classmethod
    def from_dict(cls, record: Mapping) -> "Span":
        """Rebuild a span from its JSONL form."""
        return cls(
            span_id=int(record["id"]),
            name=str(record["name"]),
            category=str(record["cat"]),
            start_s=float(record["start_s"]),
            end_s=None if record.get("end_s") is None else float(record["end_s"]),
            args=dict(record.get("args") or {}),
            parent_id=None if record.get("parent") is None else int(record["parent"]),
        )


class FlightRecorder:
    """Ring buffer of the last N spans, snapshotted on trigger.

    When ``dump_dir`` is set each trigger writes ``flight_<k>.json``
    immediately (so the evidence survives even if the process dies
    mid-run); otherwise snapshots are held in memory for a later
    ``dump_pending``.
    """

    #: In-memory snapshots kept at most (triggers beyond this still count).
    MAX_SNAPSHOTS = 16

    def __init__(self, capacity: int = 256, dump_dir: str | Path | None = None) -> None:
        require(capacity >= 1, "flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self._ring: deque[Span] = deque(maxlen=capacity)
        self.snapshots: list[dict] = []
        self.triggers = 0
        self._dumped = 0

    def record(self, span: Span) -> None:
        """Add one finished span to the ring."""
        self._ring.append(span)

    def trigger(self, reason: str, at_s: float = 0.0) -> dict:
        """Snapshot the ring; auto-dump to ``dump_dir`` when configured."""
        self.triggers += 1
        snapshot = {
            "reason": reason,
            "at_s": at_s,
            "trigger": self.triggers,
            "spans": [span.to_dict() for span in self._ring],
        }
        if len(self.snapshots) < self.MAX_SNAPSHOTS:
            self.snapshots.append(snapshot)
        if self.dump_dir is not None:
            self._dump(snapshot)
        return snapshot

    def _dump(self, snapshot: dict) -> Path:
        self.dump_dir.mkdir(parents=True, exist_ok=True)
        path = self.dump_dir / f"flight_{snapshot['trigger']}.json"
        path.write_text(json.dumps(snapshot, indent=1, sort_keys=True))
        self._dumped = max(self._dumped, snapshot["trigger"])
        return path

    def dump_pending(self, directory: str | Path) -> list[Path]:
        """Write every snapshot not yet on disk into ``directory``."""
        self.dump_dir = Path(directory)
        return [
            self._dump(snapshot)
            for snapshot in self.snapshots
            if snapshot["trigger"] > self._dumped
        ]


class Tracer:
    """Records spans against a swappable clock, bounded in memory."""

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float],
        recorder: FlightRecorder | None = None,
        max_spans: int = 500_000,
        trace_id: str | None = None,
    ) -> None:
        require(max_spans >= 1, "max_spans must be >= 1")
        self._clock = clock
        self.recorder = recorder
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        #: This trace's process-crossing identity (see TraceContext).
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        #: Default args merged into every span (e.g. the current scheme).
        self.context: dict = {}
        self._open: dict[Hashable, Span] = {}
        self._next_id = 1

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at a new clock (e.g. a fresh kernel's)."""
        self._clock = clock

    def now(self) -> float:
        """The tracer's current clock reading."""
        return self._clock()

    # -- recording -----------------------------------------------------------------

    def _new_span(
        self,
        name: str,
        category: str,
        start_s: float,
        end_s: float | None,
        args: dict,
        parent_id: int | None,
    ) -> Span:
        if self.context:
            args = {**self.context, **args}
        span = Span(self._next_id, name, category, start_s, end_s, args, parent_id)
        self._next_id += 1
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped += 1
        if end_s is not None and self.recorder is not None:
            self.recorder.record(span)
        return span

    def instant(
        self, name: str, category: str = "app", parent_id: int | None = None, **args
    ) -> Span:
        """A zero-duration marker at the current clock reading."""
        now = self._clock()
        return self._new_span(name, category, now, now, args, parent_id)

    def complete(
        self,
        name: str,
        category: str,
        start_s: float,
        end_s: float,
        parent_id: int | None = None,
        **args,
    ) -> Span:
        """A span whose endpoints are already known."""
        return self._new_span(name, category, start_s, end_s, args, parent_id)

    def open(
        self, key: Hashable, name: str, category: str = "app", **args
    ) -> Span:
        """Start a keyed long-lived span (re-opening a key closes nothing;
        the old span simply stays open and is finalised at export)."""
        span = self._new_span(name, category, self._clock(), None, args, None)
        self._open[key] = span
        return span

    def close(self, key: Hashable, **args) -> Span | None:
        """Finish the keyed span, if it is open; returns it (or None)."""
        span = self._open.pop(key, None)
        if span is None:
            return None
        span.end_s = self._clock()
        if args:
            span.args.update(args)
        if self.recorder is not None:
            self.recorder.record(span)
        return span

    def parent_id(self, key: Hashable) -> int | None:
        """Span id of the open span under ``key`` (for child linking)."""
        span = self._open.get(key)
        return span.span_id if span is not None else None

    # -- cross-process propagation ---------------------------------------------------

    def trace_context(self, parent_span_id: int | None = None) -> TraceContext:
        """The context to hand remote work that should join this trace."""
        return TraceContext(self.trace_id, parent_span_id)

    def graft(
        self,
        records: Sequence[Mapping],
        base_s: float,
        parent_id: int | None = None,
    ) -> int:
        """Adopt remote spans (``spans_to_relative`` output) into this trace.

        Spans are re-identified onto this tracer's id sequence (their
        internal parent/child structure preserved), re-based onto this
        tracer's clock at ``base_s``, and any span without a remote
        parent is attached under ``parent_id``.  Returns the number of
        spans grafted.
        """
        ids: dict[int, int] = {}
        grafted = 0
        for record in records:
            span = Span.from_dict(record)
            remote_id = span.span_id
            if span.parent_id is not None and span.parent_id in ids:
                span.parent_id = ids[span.parent_id]
            else:
                span.parent_id = parent_id
            span.span_id = self._next_id
            self._next_id += 1
            ids[remote_id] = span.span_id
            span.start_s += base_s
            if span.end_s is not None:
                span.end_s += base_s
            if len(self.spans) < self.max_spans:
                self.spans.append(span)
            else:
                self.dropped += 1
                continue
            if span.end_s is not None and self.recorder is not None:
                self.recorder.record(span)
            grafted += 1
        return grafted

    def finalize(self) -> int:
        """Close every still-open span at the current clock; returns count.

        Open spans at export time are packets that never arrived (or
        runs cut short); they are closed with ``unfinished=True`` so the
        exporters see well-formed intervals.
        """
        now = self._clock()
        leftover = len(self._open)
        for span in self._open.values():
            span.end_s = max(now, span.start_s)
            span.args["unfinished"] = True
            if self.recorder is not None:
                self.recorder.record(span)
        self._open.clear()
        return leftover


class NullTracer(Tracer):
    """The disabled tracer: every call is a no-op returning nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=lambda: 0.0)

    def _new_span(self, *args, **kwargs):  # type: ignore[override]
        return None

    def close(self, key, **args):  # type: ignore[override]
        return None

    def parent_id(self, key):  # type: ignore[override]
        return None

    def graft(self, records, base_s, parent_id=None) -> int:  # type: ignore[override]
        return 0

    def finalize(self) -> int:  # type: ignore[override]
        return 0


#: Process-wide disabled tracer.
NULL_TRACER = NullTracer()
