"""Stdlib-only sampling wall-clock profiler.

A daemon thread wakes every ``interval_s`` and snapshots the target
thread's stack via ``sys._current_frames()``.  No tracing hooks, no
instrumentation of the profiled code: the cost is one dict lookup and a
frame walk per sample, which keeps overhead low enough to leave on for
real runs (the CI guard in ``benchmarks/bench_profile_overhead.py``
holds it under 10 % on the E2 workload).

Two outputs:

* :meth:`SamplingProfiler.collapsed` -- collapsed-stack lines
  (``frame;frame;leaf count``), the flamegraph interchange format
  consumed by ``flamegraph.pl``, speedscope, and friends;
* :meth:`SamplingProfiler.report` -- a JSON-safe summary (sample count,
  effective rate, top-N self-time frames) embedded into run manifests
  under ``extra["profile"]``.

Wall-clock sampling deliberately includes blocking time (I/O, lock
waits, pool round-trips): for the replay engine the interesting
question is "where did the seconds go", not "where did the CPU spin".
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from pathlib import Path

from repro.util.validation import require

__all__ = ["SamplingProfiler", "frame_label"]

#: Default time between samples (5 ms ~ 200 Hz).
DEFAULT_INTERVAL_S = 0.005

#: Stacks deeper than this are truncated at the root end.
MAX_DEPTH = 128


def frame_label(filename: str, function: str) -> str:
    """One stack frame as ``filestem:function`` (no ``;``, no spaces).

    The file stem keeps labels short and stable across checkouts; the
    collapsed-stack format reserves ``;`` and space, so both are
    scrubbed defensively.
    """
    stem = Path(filename).stem or "?"
    label = f"{stem}:{function}"
    return label.replace(";", ",").replace(" ", "_")


class SamplingProfiler:
    """Periodic stack snapshots of one thread, aggregated by stack.

    Use as a context manager around the region to profile::

        with SamplingProfiler() as profiler:
            expensive_work()
        print(profiler.collapsed())

    The profiler targets the thread that *created* it by default, which
    is the right thing both for the CLI (main thread) and for a served
    request (its worker thread creates the profiler inside the thread).
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        target_thread_id: int | None = None,
        max_depth: int = MAX_DEPTH,
    ) -> None:
        require(interval_s > 0.0, "sampling interval must be positive")
        require(max_depth >= 1, "max_depth must be >= 1")
        self.interval_s = interval_s
        self.max_depth = max_depth
        self.target_thread_id = (
            target_thread_id
            if target_thread_id is not None
            else threading.get_ident()
        )
        #: stack tuple (root first) -> number of samples observing it.
        self.stacks: Counter[tuple[str, ...]] = Counter()
        self.samples = 0
        self.duration_s = 0.0
        self._stop = threading.Event()
        self._sampler: threading.Thread | None = None
        self._started_at = 0.0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        """Begin sampling (idempotent start is a bug; raises)."""
        require(self._sampler is None, "profiler already started")
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._sampler = threading.Thread(
            target=self._sample_loop, name="repro-profiler", daemon=True
        )
        self._sampler.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling and wait for the sampler thread to exit."""
        if self._sampler is None:
            return self
        self._stop.set()
        self._sampler.join()
        self._sampler = None
        self.duration_s += time.perf_counter() - self._started_at
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *_exc_info) -> None:
        self.stop()

    # -- sampling --------------------------------------------------------------

    def _sample_loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(self.target_thread_id)
            if frame is None:
                continue  # target thread finished; keep waiting for stop
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                stack.append(frame_label(code.co_filename, code.co_name))
                frame = frame.f_back
                depth += 1
            stack.reverse()
            self.stacks[tuple(stack)] += 1
            self.samples += 1

    # -- output ----------------------------------------------------------------

    def collapsed(self) -> str:
        """Collapsed-stack lines (``a;b;c count``), sorted for stability."""
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.stacks.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path: str | Path) -> Path:
        """Write :meth:`collapsed` output to ``path`` (parents created)."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(self.collapsed())
        return out

    def top(self, n: int = 10) -> list[dict]:
        """Top ``n`` frames by self time (the sampled leaf frame).

        Each row carries ``self`` (samples where the frame was the
        leaf), ``total`` (samples where it appeared anywhere), and the
        corresponding fractions of all samples.
        """
        require(n >= 1, "top-N needs n >= 1")
        self_counts: Counter[str] = Counter()
        total_counts: Counter[str] = Counter()
        for stack, count in self.stacks.items():
            self_counts[stack[-1]] += count
            for label in set(stack):
                total_counts[label] += count
        rows = []
        for label, self_count in self_counts.most_common(n):
            rows.append(
                {
                    "frame": label,
                    "self": self_count,
                    "total": total_counts[label],
                    "self_fraction": self_count / self.samples,
                    "total_fraction": total_counts[label] / self.samples,
                }
            )
        return rows

    def report(self, top_n: int = 10) -> dict:
        """JSON-safe summary for run manifests (``extra["profile"]``)."""
        return {
            "interval_s": self.interval_s,
            "samples": self.samples,
            "duration_s": round(self.duration_s, 6),
            "rate_hz": (
                round(self.samples / self.duration_s, 3)
                if self.duration_s > 0
                else 0.0
            ),
            "distinct_stacks": len(self.stacks),
            "top": self.top(top_n) if self.samples else [],
        }

    def format_top_table(self, n: int = 10) -> str:
        """The top-N self-time table as printable text."""
        if not self.samples:
            return "profiler: no samples collected (run too short?)"
        lines = [
            f"profiler: {self.samples} samples @ {self.interval_s * 1e3:g} ms"
            f" over {self.duration_s:.2f}s",
            f"{'self%':>7} {'total%':>7}  frame",
        ]
        for row in self.top(n):
            lines.append(
                f"{100 * row['self_fraction']:6.1f}% "
                f"{100 * row['total_fraction']:6.1f}%  {row['frame']}"
            )
        return "\n".join(lines)
