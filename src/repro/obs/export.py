"""Span-log exporters: Chrome ``trace_event`` JSON and JSONL.

The Chrome format is the `trace_event` JSON-array flavour that both
``chrome://tracing`` and Perfetto load directly: complete (``"X"``)
events for intervals, instant (``"i"``) events for markers, with
``process_name`` / ``thread_name`` metadata so categories and nodes show
up as labelled tracks.  The JSONL form is one span per line, loss-free,
and is what ``repro obs export`` converts from.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.trace import Span

__all__ = [
    "spans_to_trace_events",
    "write_chrome_trace",
    "write_spans_jsonl",
    "read_spans_jsonl",
]

#: Seconds -> trace_event microseconds.
_US = 1e6


def _track_label(span: Span) -> str:
    """Which named track a span lands on inside its category's process."""
    for key in ("node", "flow", "edge"):
        value = span.args.get(key)
        if value is not None:
            return str(value)
    return span.category


def spans_to_trace_events(spans: Sequence[Span]) -> list[dict]:
    """Spans -> Chrome ``trace_event`` dicts (with naming metadata)."""
    events: list[dict] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[int, str], int] = {}
    for span in spans:
        pid = pids.get(span.category)
        if pid is None:
            pid = len(pids) + 1
            pids[span.category] = pid
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": span.category},
                }
            )
        label = _track_label(span)
        tid = tids.get((pid, label))
        if tid is None:
            tid = len([k for k in tids if k[0] == pid]) + 1
            tids[(pid, label)] = tid
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
        end_s = span.end_s if span.end_s is not None else span.start_s
        event = {
            "name": span.name,
            "cat": span.category,
            "pid": pid,
            "tid": tid,
            "ts": span.start_s * _US,
            "args": dict(span.args),
        }
        if end_s > span.start_s:
            event["ph"] = "X"
            event["dur"] = (end_s - span.start_s) * _US
        else:
            event["ph"] = "i"
            event["s"] = "t"
        if span.parent_id is not None:
            event["args"]["parent_span"] = span.parent_id
        event["args"]["span_id"] = span.span_id
        events.append(event)
    return events


def write_chrome_trace(spans: Sequence[Span], path: str | Path) -> Path:
    """Write a ``chrome://tracing`` / Perfetto-loadable trace JSON."""
    path = Path(path)
    payload = {
        "displayTimeUnit": "ms",
        "traceEvents": spans_to_trace_events(spans),
    }
    path.write_text(json.dumps(payload))
    return path


def write_spans_jsonl(spans: Iterable[Span], path: str | Path) -> Path:
    """Write the loss-free one-span-per-line log."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span.to_dict(), sort_keys=True))
            handle.write("\n")
    return path


def read_spans_jsonl(path: str | Path) -> list[Span]:
    """Load a JSONL span log back into :class:`Span` objects."""
    spans: list[Span] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(Span.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError) as error:
                raise ValueError(
                    f"{path}:{line_number}: not a span log line ({error})"
                ) from error
    return spans
