"""Metrics registry: counters, gauges, fixed-bucket histograms.

Components register instruments by dotted name (``kernel.queue_depth``,
``net.sent.NYC->LAX``) against a :class:`MetricsRegistry`; the registry
summarises everything on demand for the run manifest and the ``obs
summary`` CLI view.

The disabled path costs nothing: :data:`NULL_REGISTRY` is a process-wide
no-op singleton whose instruments swallow every update, so instrumented
code can hold a registry unconditionally and still add zero work to the
hot path when observability is off.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterator, Mapping

from repro.util.validation import require

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
]

#: Geometric bucket ladder, four buckets per decade from 1e-6 to 1e6.
#: Wide enough for seconds-scale lags, millisecond latencies, and
#: queue-depth counts alike without per-metric tuning.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    10.0 ** (exponent / 4.0) for exponent in range(-24, 25)
)


class Counter:
    """A monotonically increasing sum (float increments allowed)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        self.value += amount

    def summary(self) -> dict:
        """JSON-safe description of the counter's current state."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value

    def summary(self) -> dict:
        """JSON-safe description of the gauge's current state."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A fixed-bucket distribution with percentile summaries.

    Observations land in the first bucket whose upper bound is >= the
    value; quantiles are answered with the matching bucket upper bound
    (the classic Prometheus-style over-estimate), while min/max/sum are
    tracked exactly.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min", "max")

    def __init__(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        require(len(buckets) >= 1, "histogram needs at least one bucket")
        require(
            all(a < b for a, b in zip(buckets, buckets[1:])),
            "histogram buckets must be strictly increasing",
        )
        self.name = name
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """The smallest bucket bound covering quantile ``q`` of the data.

        Exact extremes are substituted at the ends (q=0 -> min, q=1 ->
        max).  An empty histogram has no quantiles: asking for one is a
        caller bug and raises rather than inventing a 0.0 that would
        read as a real (and suspiciously perfect) latency.
        """
        require(0.0 <= q <= 1.0, "quantile must be in [0, 1]")
        require(
            self.count > 0,
            f"histogram {self.name!r} is empty: quantiles are undefined "
            "(check .count before asking)",
        )
        if q <= 0.0:
            return self.min
        target = math.ceil(q * self.count)
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index < len(self.buckets):
                    return min(self.buckets[index], self.max)
                return self.max  # overflow bucket: only the max is known
        return self.max

    @property
    def mean(self) -> float:
        """Exact arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """JSON-safe roll-up: count, sum, min/max/mean, p50/p99/p999."""
        if self.count == 0:
            return {"type": "histogram", "count": 0}
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }


class MetricsRegistry:
    """Create-or-return instruments by dotted name; summarise on demand."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, **kwargs)
            self._instruments[name] = instrument
        require(
            isinstance(instrument, kind),
            f"metric {name!r} already registered as "
            f"{type(instrument).__name__}, not {kind.__name__}",
        )
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram named ``name``, created on first use."""
        return self._get(name, Histogram, buckets=buckets)

    def value(self, name: str) -> float:
        """Current value of a counter or gauge (raises for histograms)."""
        instrument = self._instruments[name]
        require(
            isinstance(instrument, (Counter, Gauge)),
            f"metric {name!r} has no scalar value",
        )
        return instrument.value

    def names(self, prefix: str = "") -> list[str]:
        """Registered metric names (optionally filtered), sorted."""
        return sorted(n for n in self._instruments if n.startswith(prefix))

    def summarize(self) -> dict[str, dict]:
        """All instruments as a name-sorted JSON-safe mapping."""
        return {
            name: self._instruments[name].summary() for name in self.names()
        }

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)


class _NullInstrument:
    """Accepts every update and keeps nothing."""

    __slots__ = ()
    name = "null"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def summary(self) -> dict:
        return {"type": "null"}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The disabled registry: every instrument is the shared no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def summarize(self) -> Mapping[str, dict]:  # type: ignore[override]
        return {}


#: Process-wide disabled registry; instrumented code may share it freely.
NULL_REGISTRY = NullRegistry()
