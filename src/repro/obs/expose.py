"""Prometheus text exposition for the metrics registry.

The daemon's ``GET /v1/metrics`` endpoint renders the live registry in
the Prometheus text format (version 0.0.4), so any off-the-shelf
scraper -- or the bundled ``repro obs watch`` viewer -- can consume it:

* counters and gauges become single samples;
* histograms become the classic cumulative ``_bucket{le="..."}``
  series plus ``_sum`` and ``_count`` (our fixed-bucket histograms
  place a value in the first bucket whose bound is >= the value, which
  is exactly Prometheus ``le`` semantics).

Dotted registry names (``serve.queue_depth``) are sanitised into metric
names (``repro_serve_queue_depth``); the original dotted name is kept
in the ``# HELP`` line so nothing is lost in the mangling.

``parse_exposition`` is the inverse: it parses the text format back
into sample families, which is how the watch CLI and the CI smoke test
read the endpoint without any third-party client library.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.util.validation import require

__all__ = [
    "CONTENT_TYPE",
    "Family",
    "Sample",
    "metric_name",
    "render_exposition",
    "parse_exposition",
    "sample_value",
    "histogram_quantile",
    "families_with_prefix",
]

#: The Content-Type a conforming scraper expects from ``/v1/metrics``.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Every exported metric name carries this prefix (one namespace).
PREFIX = "repro_"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(dotted: str) -> str:
    """The exposition name for a dotted registry name."""
    sanitized = _INVALID_CHARS.sub("_", dotted)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return PREFIX + sanitized


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_exposition(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus text format (name-sorted)."""
    lines: list[str] = []
    instruments = {
        instrument.name: instrument
        for instrument in registry
        if isinstance(instrument, (Counter, Gauge, Histogram))
    }
    for dotted in sorted(instruments):
        instrument = instruments[dotted]
        name = metric_name(dotted)
        lines.append(f"# HELP {name} repro metric {dotted!r}")
        if isinstance(instrument, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_format_value(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(instrument.value)}")
        else:
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, bucket_count in zip(
                instrument.buckets, instrument.counts
            ):
                cumulative += bucket_count
                if bucket_count == 0:
                    continue  # cumulative semantics allow sparse buckets
                lines.append(
                    f'{name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                )
            lines.append(f'{name}_bucket{{le="+Inf"}} {instrument.count}')
            lines.append(f"{name}_sum {_format_value(instrument.total)}")
            lines.append(f"{name}_count {instrument.count}")
    return "\n".join(lines) + "\n"


# -- parsing ---------------------------------------------------------------------


@dataclass
class Sample:
    """One exposition sample line: name, labels, value."""

    name: str
    labels: dict[str, str]
    value: float


@dataclass
class Family:
    """One metric family: TYPE/HELP metadata plus its sample lines."""

    name: str
    type: str = "untyped"
    help: str = ""
    samples: list[Sample] = field(default_factory=list)


_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_number(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _family_of(
    sample_name: str, labels: Mapping[str, str], families: dict[str, Family]
) -> Family:
    base = sample_name
    if sample_name.endswith("_bucket") and "le" in labels:
        # A bucket sample is recognisable by its ``le`` label alone, so
        # grouping works even without a preceding # TYPE line.
        base = sample_name[: -len("_bucket")]
    else:
        for suffix in ("_sum", "_count"):
            stripped = sample_name[: -len(suffix)]
            if sample_name.endswith(suffix) and stripped in families:
                base = stripped
                break
    if base not in families:
        families[base] = Family(base)
    return families[base]


def parse_exposition(text: str) -> dict[str, Family]:
    """Parse Prometheus text format into families keyed by metric name.

    Raises :class:`~repro.util.validation.ValidationError` on a line
    that is neither a comment, a blank, nor a well-formed sample -- the
    CI smoke test leans on this to catch a malformed endpoint.
    """
    families: dict[str, Family] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("TYPE", "HELP"):
                family = families.setdefault(parts[2], Family(parts[2]))
                if parts[1] == "TYPE":
                    family.type = parts[3] if len(parts) > 3 else "untyped"
                else:
                    family.help = parts[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE_LINE.match(line)
        require(match is not None, f"malformed exposition line: {raw_line!r}")
        labels = {
            name: _unescape_label(value)
            for name, value in _LABEL.findall(match.group("labels") or "")
        }
        family = _family_of(match.group("name"), labels, families)
        family.samples.append(
            Sample(
                match.group("name"),
                labels,
                _parse_number(match.group("value")),
            )
        )
    return families


def sample_value(
    families: Mapping[str, Family],
    sample_name: str,
    labels: Mapping[str, str] | None = None,
) -> float | None:
    """The value of one sample, or ``None`` when absent."""
    wanted = dict(labels or {})
    for family in families.values():
        for sample in family.samples:
            if sample.name == sample_name and sample.labels == wanted:
                return sample.value
    return None


def histogram_quantile(family: Family, q: float) -> float | None:
    """Estimate quantile ``q`` from a family's cumulative buckets.

    Answers the smallest finite ``le`` bound covering the quantile
    (mirroring :meth:`Histogram.quantile` without access to the exact
    min/max), ``None`` for an empty or bucket-less family.
    """
    require(0.0 <= q <= 1.0, "quantile must be in [0, 1]")
    buckets = sorted(
        (
            (_parse_number(sample.labels["le"]), sample.value)
            for sample in family.samples
            if sample.name == family.name + "_bucket" and "le" in sample.labels
        ),
        key=lambda pair: pair[0],
    )
    if not buckets:
        return None
    total = buckets[-1][1]
    if total <= 0:
        return None
    target = math.ceil(q * total) if q > 0.0 else 1
    finite = [bound for bound, _count in buckets if bound != math.inf]
    for bound, cumulative in buckets:
        if cumulative >= target:
            if bound == math.inf:
                break
            return bound
    return max(finite) if finite else math.inf


def families_with_prefix(
    families: Mapping[str, Family], dotted_prefix: str
) -> Iterable[Family]:
    """Families whose exported name matches a dotted registry prefix."""
    prefix = metric_name(dotted_prefix)
    return (
        family for name, family in families.items() if name.startswith(prefix)
    )
