"""Delivery-latency distributions (experiment E6).

Built from packet-level simulation records: for each scheme, the CDF of
one-way delivery latency over delivered packets, plus the fraction never
delivered.  The paper's timeliness story (claim C1) shows up as every
redundant scheme keeping essentially all delivered packets under the
65 ms deadline while single-path schemes grow a heavy tail during
problems.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.packet_sim import PacketSimOutcome
from repro.util.stats import empirical_cdf, percentile

__all__ = ["LatencyProfile", "latency_profile", "cdf_at"]


@dataclass(frozen=True)
class LatencyProfile:
    """Summary of one scheme's delivery-latency distribution."""

    scheme: str
    packets: int
    delivered: int
    lost_fraction: float
    p50_ms: float
    p99_ms: float
    p999_ms: float
    max_ms: float
    on_time_fraction: float
    cdf: tuple[tuple[float, float], ...]  # (latency_ms, fraction <= latency)


def latency_profile(outcome: PacketSimOutcome) -> LatencyProfile:
    """Summarise a packet-sim outcome into a latency profile."""
    latencies = outcome.latencies_ms()
    packets = outcome.packets
    if not latencies:
        return LatencyProfile(
            scheme=outcome.scheme,
            packets=packets,
            delivered=0,
            lost_fraction=1.0 if packets else 0.0,
            p50_ms=float("nan"),
            p99_ms=float("nan"),
            p999_ms=float("nan"),
            max_ms=float("nan"),
            on_time_fraction=0.0 if packets else 1.0,
            cdf=(),
        )
    return LatencyProfile(
        scheme=outcome.scheme,
        packets=packets,
        delivered=len(latencies),
        lost_fraction=(packets - len(latencies)) / packets if packets else 0.0,
        p50_ms=percentile(latencies, 50.0),
        p99_ms=percentile(latencies, 99.0),
        p999_ms=percentile(latencies, 99.9),
        max_ms=max(latencies),
        on_time_fraction=outcome.on_time_fraction,
        cdf=tuple(empirical_cdf(latencies)),
    )


def cdf_at(profile: LatencyProfile, latency_ms: float) -> float:
    """Fraction of *delivered* packets with latency <= ``latency_ms``."""
    fraction = 0.0
    for value, cumulative in profile.cdf:
        if value <= latency_ms:
            fraction = cumulative
        else:
            break
    return fraction
