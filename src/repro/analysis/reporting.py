"""Rendered tables for every experiment (what the benches print)."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.classify import CATEGORY_ORDER
from repro.analysis.metrics import (
    DEFAULT_BASELINE,
    DEFAULT_OPTIMAL,
    per_flow_gap_coverage,
    scheme_performance_rows,
)
from repro.simulation.cost import cost_comparison
from repro.simulation.results import ReplayResult
from repro.util.tables import render_table

__all__ = [
    "format_scheme_performance_table",
    "format_cost_table",
    "format_classification_table",
    "format_per_flow_table",
    "format_degradation_table",
]


def format_scheme_performance_table(
    result: ReplayResult,
    baseline: str = DEFAULT_BASELINE,
    optimal: str = DEFAULT_OPTIMAL,
    title: str = "Scheme performance (all flows, whole trace)",
) -> str:
    """The E2 headline table."""
    rows = []
    for row in scheme_performance_rows(result, baseline, optimal):
        coverage = row["gap_coverage"]
        rows.append(
            [
                row["scheme"],
                f"{row['unavailable_s']:.1f}",
                f"{row['lost_s']:.1f}",
                f"{row['late_s']:.1f}",
                f"{100 * row['availability']:.4f}",
                f"{row['expected_bad_packets']:.0f}",
                "-" if coverage is None else f"{100 * coverage:.1f}",
                f"{row['cost_messages']:.2f}",
            ]
        )
    return render_table(
        (
            "scheme",
            "unavail s",
            "lost s",
            "late s",
            "avail %",
            "bad pkts",
            "gap cov %",
            "msgs/pkt",
        ),
        rows,
        title=title,
    )


def format_cost_table(
    result: ReplayResult,
    baseline_scheme: str = "static-two-disjoint",
    title: str = "Message cost per packet",
) -> str:
    """The E3 cost table."""
    rows = []
    for entry in cost_comparison(result, baseline_scheme):
        rows.append(
            [
                entry.scheme,
                f"{entry.average_messages_per_packet:.2f}",
                f"{entry.overhead_percent:+.1f}%",
            ]
        )
    return render_table(
        ("scheme", "msgs/pkt", f"vs {baseline_scheme}"), rows, title=title
    )


def format_classification_table(
    distribution: Mapping[str, float],
    counts: Mapping[str, int] | None = None,
    title: str = "Problem classification (per flow perspective)",
) -> str:
    """The E1 table."""
    rows = []
    for category in CATEGORY_ORDER:
        fraction = distribution.get(category, 0.0)
        row = [category, f"{100 * fraction:.1f}%"]
        if counts is not None:
            row.append(str(counts.get(category, 0)))
        rows.append(row)
    headers = ["problem location", "share"]
    if counts is not None:
        headers.append("events")
    return render_table(headers, rows, title=title)


def format_attribution_matrix(
    matrix: Mapping[str, Mapping[str, float]],
    title: str = "Unavailability (s) by problem location, per scheme",
) -> str:
    """Render the per-scheme attribution matrix (E14)."""
    categories = ("destination", "source", "source+destination", "middle", "none")
    rows = []
    for scheme, attribution in matrix.items():
        rows.append(
            [scheme, *(f"{attribution.get(c, 0.0):.1f}" for c in categories)]
        )
    return render_table(["scheme", *categories], rows, title=title)


def format_per_flow_table(
    result: ReplayResult,
    schemes: Sequence[str] = ("static-two-disjoint", "dynamic-two-disjoint", "targeted"),
    baseline: str = DEFAULT_BASELINE,
    optimal: str = DEFAULT_OPTIMAL,
    title: str = "Per-flow gap coverage (%)",
) -> str:
    """The E5 table: one row per flow, one column per scheme."""
    coverage_by_scheme = {
        scheme: per_flow_gap_coverage(result, scheme, baseline, optimal)
        for scheme in schemes
    }
    rows = []
    for flow_name in result.flow_names:
        row: list[object] = [flow_name]
        for scheme in schemes:
            coverage = coverage_by_scheme[scheme].get(flow_name)
            row.append("-" if coverage is None else f"{100 * coverage:.1f}")
        rows.append(row)
    return render_table(["flow", *schemes], rows, title=title)


def format_degradation_table(
    rows: Sequence[Mapping[str, object]],
    title: str = "Graceful degradation (E21)",
) -> str:
    """The E21 scheme x family degradation matrix for one family."""
    formatted = []
    for row in rows:
        coverage = row["gap_coverage"]
        ttr_mean = row["ttr_mean_s"]
        ttr_max = row["ttr_max_s"]
        formatted.append(
            [
                str(row["scheme"]),
                f"{row['unavailable_s']:.2f}",
                "-" if coverage is None else f"{100 * coverage:.1f}",
                f"{row['cost_messages']:.2f}",
                f"{100 * row['worst_window_on_time']:.2f}",
                "-" if ttr_mean is None else f"{ttr_mean:.2f}",
                "-" if ttr_max is None else f"{ttr_max:.2f}",
            ]
        )
    return render_table(
        (
            "scheme",
            "unavail s",
            "gap cov %",
            "msgs/pkt",
            "worst win %",
            "ttr mean s",
            "ttr max s",
        ),
        formatted,
        title=title,
    )
