"""Graceful-degradation accounting for adversarial scenario families (E21).

Gap coverage and cost answer "how good on average"; under adversarial
conditions the interesting questions are *how bad does it get* and *how
fast does it come back*.  This module computes both from the per-window
records a ``collect_windows=True`` replay produces:

* :func:`worst_window_on_time` -- the minimum, over every sliding window
  of length ``W``, of the time-averaged on-time probability: the
  scheme's worst ``W`` seconds, not its average ones;
* :func:`time_to_recover` -- for every hard (full-loss) event, how long
  after repair the flow needed to get back above a threshold;
* :func:`degradation_rows` -- the E21 scheme matrix combining both with
  the classic gap-coverage/cost columns.

A scheme *degrades gracefully* when its worst window stays near its
average and it never does worse than the static single path -- the
cliff check E21's acceptance criterion pins.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.analysis.metrics import DEFAULT_BASELINE, DEFAULT_OPTIMAL, gap_coverage
from repro.chaos.generate import FULL_LOSS
from repro.netmodel.events import ProblemEvent
from repro.simulation.results import FlowSchemeStats, ReplayResult, WindowRecord
from repro.util.validation import require

__all__ = [
    "worst_window_on_time",
    "time_to_recover",
    "hard_events",
    "degradation_rows",
]


def _sorted_records(stats: FlowSchemeStats) -> list[WindowRecord]:
    require(
        bool(stats.windows),
        f"flow {stats.flow.name!r} under {stats.scheme!r} has no window "
        "records; run the replay with collect_windows=True",
    )
    return sorted(stats.windows, key=lambda record: record.start_s)


def worst_window_on_time(stats: FlowSchemeStats, window_s: float) -> float:
    """Minimum sliding-window time-averaged on-time probability.

    The on-time probability is piecewise constant over the replay's
    records, so its windowed average is piecewise linear in the window
    start and attains its minimum when the window's start or end aligns
    with a record boundary; only those candidates are evaluated.  A
    replay shorter than ``window_s`` returns the overall average.
    """
    require(window_s > 0, "window_s must be positive")
    records = _sorted_records(stats)
    start = records[0].start_s
    end = records[-1].end_s
    # Prefix integral of on-time probability at record boundaries.
    boundaries = [start]
    prefix = [0.0]
    for record in records:
        boundaries.append(record.end_s)
        prefix.append(
            prefix[-1] + record.on_time_probability * record.duration_s
        )

    def integral(t: float) -> float:
        t = min(max(t, start), end)
        # Locate the record containing t (records are contiguous in
        # practice; gaps would count as zero thickness here).
        low, high = 0, len(boundaries) - 1
        while low < high:
            mid = (low + high + 1) // 2
            if boundaries[mid] <= t:
                low = mid
            else:
                high = mid - 1
        base = prefix[low]
        if low < len(records) and t > boundaries[low]:
            base += records[low].on_time_probability * (t - boundaries[low])
        return base

    total = end - start
    if total <= window_s:
        return integral(end) / total if total > 0 else 1.0
    candidates = set()
    for boundary in boundaries:
        candidates.add(min(max(boundary, start), end - window_s))
        candidates.add(min(max(boundary - window_s, start), end - window_s))
    worst = math.inf
    for s in sorted(candidates):
        average = (integral(s + window_s) - integral(s)) / window_s
        worst = min(worst, average)
    return worst


def hard_events(events: Iterable[ProblemEvent]) -> list[ProblemEvent]:
    """Events containing at least one full-loss burst (outages, not load)."""
    return [
        event
        for event in events
        if any(
            degradation.state.loss_rate >= FULL_LOSS
            for burst in event.bursts
            for degradation in burst.degradations
        )
    ]


def time_to_recover(
    stats: FlowSchemeStats,
    events: Sequence[ProblemEvent],
    threshold: float = 0.99,
) -> list[float]:
    """Seconds from each hard event's repair until on-time >= threshold.

    One value per hard event: the gap between the event's end and the
    start of the first record at or above ``threshold`` (zero when the
    flow is already healthy at repair time).  A flow that never recovers
    before the replay ends is censored at the remaining horizon -- a
    lower bound, counted like any other value so chronic failure shows
    up as a large TTR rather than silently dropping out.
    """
    require(0.0 < threshold <= 1.0, "threshold must be in (0, 1]")
    records = _sorted_records(stats)
    horizon = records[-1].end_s
    recoveries: list[float] = []
    for event in hard_events(events):
        repair = min(event.end_s, horizon)
        recovered_at: float | None = None
        for record in records:
            if record.end_s <= repair:
                continue
            if record.on_time_probability >= threshold:
                recovered_at = max(repair, record.start_s)
                break
        if recovered_at is None:
            recovered_at = horizon  # censored: never recovered in-horizon
        recoveries.append(recovered_at - repair)
    return recoveries


def degradation_rows(
    result: ReplayResult,
    events: Sequence[ProblemEvent],
    window_s: float = 10.0,
    recover_threshold: float = 0.99,
    baseline: str = DEFAULT_BASELINE,
    optimal: str = DEFAULT_OPTIMAL,
) -> list[dict]:
    """The E21 degradation matrix: one dict per scheme.

    Columns: total unavailability, gap coverage (``None`` when the
    baseline-to-optimal gap is not positive -- quiet worlds have nothing
    to normalise by), message cost, the worst sliding window over all
    flows, and mean/max time-to-recover over every (flow, hard event)
    pair (both ``None`` for families without hard events).
    """
    gap_defined = (
        baseline in result.schemes
        and optimal in result.schemes
        and result.totals(baseline).unavailable_s
        - result.totals(optimal).unavailable_s
        > 0
    )
    rows = []
    for scheme in result.schemes:
        totals = result.totals(scheme)
        if not gap_defined:
            coverage: float | None = None
        elif scheme in (baseline, optimal):
            coverage = {baseline: 0.0, optimal: 1.0}[scheme]
        else:
            coverage = gap_coverage(result, scheme, baseline, optimal)
        worst = min(
            worst_window_on_time(result.get(flow, scheme), window_s)
            for flow in result.flow_names
        )
        recoveries: list[float] = []
        for flow in result.flow_names:
            recoveries.extend(
                time_to_recover(result.get(flow, scheme), events, recover_threshold)
            )
        rows.append(
            {
                "scheme": scheme,
                "unavailable_s": totals.unavailable_s,
                "gap_coverage": coverage,
                "cost_messages": totals.average_cost_messages,
                "worst_window_on_time": worst,
                "ttr_mean_s": (
                    sum(recoveries) / len(recoveries) if recoveries else None
                ),
                "ttr_max_s": max(recoveries) if recoveries else None,
            }
        )
    return rows
