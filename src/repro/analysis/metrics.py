"""Unavailability and gap-coverage metrics.

The paper's headline comparison normalises each scheme's improvement to
the *performance gap* between a traditional single-path approach and the
optimal-but-expensive time-constrained flooding:

    coverage(s) = (unavail(baseline) - unavail(s))
                  / (unavail(baseline) - unavail(optimal))

so 0% == no better than single path, 100% == as good as flooding.  The
abstract's claims: targeted > 99%, dynamic two disjoint ~= 70%, static two
disjoint ~= 45%.  The baseline defaults to the *dynamic* single path (a
traditional routing protocol re-routes); pass ``baseline="static-single"``
to normalise against the fully static one.
"""

from __future__ import annotations

from repro.simulation.results import ReplayResult
from repro.util.validation import require

__all__ = [
    "gap_coverage",
    "per_flow_gap_coverage",
    "scheme_performance_rows",
    "DEFAULT_BASELINE",
    "DEFAULT_OPTIMAL",
]

DEFAULT_BASELINE = "dynamic-single"
DEFAULT_OPTIMAL = "flooding"


def gap_coverage(
    result: ReplayResult,
    scheme: str,
    baseline: str = DEFAULT_BASELINE,
    optimal: str = DEFAULT_OPTIMAL,
) -> float:
    """Fraction of the baseline->optimal gap closed by ``scheme``.

    Returns a fraction (1.0 == 100%).  Raises when the gap is not positive
    (the baseline already matches the optimal -- nothing to normalise by).
    """
    baseline_unavailable = result.totals(baseline).unavailable_s
    optimal_unavailable = result.totals(optimal).unavailable_s
    gap = baseline_unavailable - optimal_unavailable
    require(
        gap > 0,
        f"no positive gap between {baseline!r} and {optimal!r}; "
        "gap coverage is undefined",
    )
    scheme_unavailable = result.totals(scheme).unavailable_s
    return (baseline_unavailable - scheme_unavailable) / gap


def per_flow_gap_coverage(
    result: ReplayResult,
    scheme: str,
    baseline: str = DEFAULT_BASELINE,
    optimal: str = DEFAULT_OPTIMAL,
) -> dict[str, float | None]:
    """Gap coverage computed per flow (E5).

    Flows where the baseline saw no excess unavailability have no defined
    coverage and map to ``None``.
    """
    coverages: dict[str, float | None] = {}
    for flow_name in result.flow_names:
        baseline_unavailable = result.get(flow_name, baseline).unavailable_s
        optimal_unavailable = result.get(flow_name, optimal).unavailable_s
        gap = baseline_unavailable - optimal_unavailable
        if gap <= 1e-9:
            coverages[flow_name] = None
            continue
        scheme_unavailable = result.get(flow_name, scheme).unavailable_s
        coverages[flow_name] = (baseline_unavailable - scheme_unavailable) / gap
    return coverages


def scheme_performance_rows(
    result: ReplayResult,
    baseline: str = DEFAULT_BASELINE,
    optimal: str = DEFAULT_OPTIMAL,
) -> list[dict]:
    """The E2 table, one dict per scheme.

    Columns: unavailability (seconds, summed over flows), its lost/late
    split, availability, expected lost-or-late packets, gap coverage, and
    average message cost per packet.
    """
    gap_defined = (
        baseline in result.schemes
        and optimal in result.schemes
        and result.totals(baseline).unavailable_s
        - result.totals(optimal).unavailable_s
        > 0
    )
    rows = []
    for scheme in result.schemes:
        totals = result.totals(scheme)
        if not gap_defined:
            coverage: float | None = None  # trace too quiet to normalise
        elif scheme in (baseline, optimal):
            coverage = {baseline: 0.0, optimal: 1.0}[scheme]
        else:
            coverage = gap_coverage(result, scheme, baseline, optimal)
        rows.append(
            {
                "scheme": scheme,
                "unavailable_s": totals.unavailable_s,
                "lost_s": totals.lost_s,
                "late_s": totals.late_s,
                "availability": totals.availability,
                "expected_bad_packets": totals.expected_bad_packets(result.service),
                "gap_coverage": coverage,
                "cost_messages": totals.average_cost_messages,
            }
        )
    return rows
