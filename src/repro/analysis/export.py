"""CSV export of experiment artifacts.

Every table/series the benches print can also be written as CSV so
downstream users can plot the figures with their tool of choice.  The
exporters deliberately take the same inputs as the report renderers, so
a replay computed once can be rendered and exported without recomputing.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

from repro.analysis.cdf import LatencyProfile
from repro.analysis.metrics import (
    DEFAULT_BASELINE,
    DEFAULT_OPTIMAL,
    per_flow_gap_coverage,
    scheme_performance_rows,
)
from repro.simulation.packet_sim import PacketSimOutcome
from repro.simulation.results import ReplayResult
from repro.util.validation import require

__all__ = [
    "export_scheme_performance",
    "export_per_flow_coverage",
    "export_latency_cdf",
    "export_delivery_series",
]


def _write_rows(
    path: str | Path, header: Sequence[str], rows: Sequence[Sequence[object]]
) -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_scheme_performance(
    result: ReplayResult,
    path: str | Path,
    baseline: str = DEFAULT_BASELINE,
    optimal: str = DEFAULT_OPTIMAL,
) -> None:
    """The E2 table as CSV (one row per scheme)."""
    rows = []
    for row in scheme_performance_rows(result, baseline, optimal):
        coverage = row["gap_coverage"]
        rows.append(
            [
                row["scheme"],
                f"{row['unavailable_s']:.3f}",
                f"{row['lost_s']:.3f}",
                f"{row['late_s']:.3f}",
                f"{row['availability']:.8f}",
                "" if coverage is None else f"{coverage:.6f}",
                f"{row['cost_messages']:.4f}",
            ]
        )
    _write_rows(
        path,
        (
            "scheme",
            "unavailable_s",
            "lost_s",
            "late_s",
            "availability",
            "gap_coverage",
            "messages_per_packet",
        ),
        rows,
    )


def export_per_flow_coverage(
    result: ReplayResult,
    path: str | Path,
    schemes: Sequence[str] = (
        "static-two-disjoint",
        "dynamic-two-disjoint",
        "targeted",
    ),
    baseline: str = DEFAULT_BASELINE,
    optimal: str = DEFAULT_OPTIMAL,
) -> None:
    """The E5 figure data as CSV (one row per flow, one column per scheme)."""
    require(bool(schemes), "need at least one scheme")
    coverage_by_scheme = {
        scheme: per_flow_gap_coverage(result, scheme, baseline, optimal)
        for scheme in schemes
    }
    rows = []
    for flow_name in result.flow_names:
        row: list[object] = [flow_name]
        for scheme in schemes:
            value = coverage_by_scheme[scheme].get(flow_name)
            row.append("" if value is None else f"{value:.6f}")
        rows.append(row)
    _write_rows(path, ["flow", *schemes], rows)


def export_latency_cdf(
    profiles: Mapping[str, LatencyProfile], path: str | Path
) -> None:
    """The E6 figure data as CSV: long format (scheme, latency, fraction)."""
    rows = []
    for scheme in sorted(profiles):
        for latency_ms, fraction in profiles[scheme].cdf:
            rows.append([scheme, f"{latency_ms:.4f}", f"{fraction:.6f}"])
    _write_rows(path, ("scheme", "latency_ms", "cumulative_fraction"), rows)


def export_delivery_series(
    outcomes: Mapping[str, PacketSimOutcome],
    path: str | Path,
    bucket_s: float = 10.0,
) -> None:
    """The E4 case-study series as CSV (bucket start, one column/scheme)."""
    from repro.analysis.casestudy import bucketed_delivery

    require(bool(outcomes), "need at least one outcome")
    series = {
        scheme: dict(bucketed_delivery(outcome, bucket_s))
        for scheme, outcome in outcomes.items()
    }
    schemes = sorted(series)
    buckets = sorted({bucket for s in series.values() for bucket in s})
    rows = []
    for bucket in buckets:
        row: list[object] = [f"{bucket:.1f}"]
        for scheme in schemes:
            value = series[scheme].get(bucket)
            row.append("" if value is None else f"{value:.6f}")
        rows.append(row)
    _write_rows(path, ["bucket_start_s", *schemes], rows)
