"""Outage-episode analysis: how long do service interruptions last?

Total unavailable seconds hide the shape of failure: ten one-second
blips and one ten-second outage are very different for a remote-surgery
session.  This module extracts *outage episodes* -- maximal runs of
replay windows whose on-time probability falls below a threshold -- and
summarises their count and duration distribution per scheme, the
SLA-style view of the paper's reliability story.

Requires a replay run with ``ReplayConfig(collect_windows=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.simulation.results import FlowSchemeStats, ReplayResult
from repro.util.stats import mean, percentile
from repro.util.validation import require

__all__ = ["OutageEpisode", "OutageSummary", "outage_episodes", "summarize_outages"]


@dataclass(frozen=True)
class OutageEpisode:
    """One maximal run of degraded service on one flow."""

    flow: str
    start_s: float
    end_s: float
    worst_on_time_probability: float
    unavailable_s: float  # integrated expected unavailable time

    @property
    def duration_s(self) -> float:
        """Episode length in seconds."""
        return self.end_s - self.start_s


@dataclass(frozen=True)
class OutageSummary:
    """Episode statistics for one scheme across all flows."""

    scheme: str
    episodes: int
    total_unavailable_s: float
    mean_duration_s: float
    p95_duration_s: float
    max_duration_s: float


def outage_episodes(
    stats: FlowSchemeStats, threshold: float = 0.999
) -> list[OutageEpisode]:
    """Extract maximal degraded runs from one flow's replay windows.

    A window is degraded when its on-time probability is below
    ``threshold``; adjacent degraded windows merge into one episode.
    """
    require(
        bool(stats.windows),
        "outage_episodes needs windows; rerun the replay with "
        "ReplayConfig(collect_windows=True)",
    )
    require(0.0 < threshold <= 1.0, f"threshold must be in (0, 1], got {threshold}")
    episodes: list[OutageEpisode] = []
    current_start: float | None = None
    current_end = 0.0
    worst = 1.0
    unavailable = 0.0
    for window in stats.windows:
        degraded = window.on_time_probability < threshold
        if degraded:
            if current_start is None:
                current_start = window.start_s
                worst = window.on_time_probability
                unavailable = 0.0
            worst = min(worst, window.on_time_probability)
            unavailable += (1.0 - window.on_time_probability) * window.duration_s
            current_end = window.end_s
        elif current_start is not None:
            episodes.append(
                OutageEpisode(
                    stats.flow.name, current_start, current_end, worst, unavailable
                )
            )
            current_start = None
    if current_start is not None:
        episodes.append(
            OutageEpisode(
                stats.flow.name, current_start, current_end, worst, unavailable
            )
        )
    return episodes


def summarize_outages(
    result: ReplayResult,
    schemes: Sequence[str] | None = None,
    threshold: float = 0.999,
) -> list[OutageSummary]:
    """Per-scheme outage statistics across every flow in the result."""
    if schemes is None:
        schemes = list(result.schemes)
    summaries = []
    for scheme in schemes:
        episodes: list[OutageEpisode] = []
        for stats in result.per_flow(scheme).values():
            episodes.extend(outage_episodes(stats, threshold))
        if episodes:
            durations = [episode.duration_s for episode in episodes]
            summaries.append(
                OutageSummary(
                    scheme=scheme,
                    episodes=len(episodes),
                    total_unavailable_s=sum(e.unavailable_s for e in episodes),
                    mean_duration_s=mean(durations),
                    p95_duration_s=percentile(durations, 95.0),
                    max_duration_s=max(durations),
                )
            )
        else:
            summaries.append(
                OutageSummary(
                    scheme=scheme,
                    episodes=0,
                    total_unavailable_s=0.0,
                    mean_duration_s=0.0,
                    p95_duration_s=0.0,
                    max_duration_s=0.0,
                )
            )
    return summaries
