"""Case-study timelines around a single problem episode (experiment E4).

The paper illustrates its approach with a timeline of one real
destination problem: packet delivery under each scheme, bucketed over
time, before/during/after the episode.  This module finds a suitable
episode in a generated trace and produces the same series from the
packet-level engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.graph import Topology
from repro.netmodel.conditions import ConditionTimeline
from repro.netmodel.events import EventKind, ProblemEvent
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.routing.registry import STANDARD_SCHEME_NAMES, make_policy
from repro.simulation.packet_sim import PacketSimOutcome, simulate_packets
from repro.simulation.results import ReplayConfig
from repro.util.validation import require

__all__ = ["CaseStudy", "find_episode", "run_case_study", "bucketed_delivery"]


@dataclass(frozen=True)
class CaseStudy:
    """Per-scheme packet outcomes around one episode."""

    flow: FlowSpec
    event: ProblemEvent
    window_start_s: float
    window_end_s: float
    outcomes: dict[str, PacketSimOutcome]  # scheme -> outcome


def find_episode(
    events: Sequence[ProblemEvent],
    flows: Sequence[FlowSpec],
    kind: EventKind = EventKind.NODE,
    at: str = "destination",
    min_duration_s: float = 60.0,
) -> tuple[ProblemEvent, FlowSpec] | None:
    """Find an episode of ``kind`` at a flow endpoint.

    ``at`` is ``"destination"`` or ``"source"``.  Returns the first
    (event, flow) pair where the event's location is the flow's endpoint
    and the episode is long enough to show the dynamics, or ``None``.
    """
    require(at in ("destination", "source"), f"bad endpoint selector {at!r}")
    for event in events:
        if event.kind is not kind or event.duration_s < min_duration_s:
            continue
        for flow in flows:
            endpoint = flow.destination if at == "destination" else flow.source
            if event.location == endpoint:
                return event, flow
    return None


def run_case_study(
    topology: Topology,
    timeline: ConditionTimeline,
    flow: FlowSpec,
    event: ProblemEvent,
    service: ServiceSpec,
    scheme_names: Sequence[str] = STANDARD_SCHEME_NAMES,
    config: ReplayConfig = ReplayConfig(),
    seed: int = 0,
    lead_s: float = 30.0,
    tail_s: float = 30.0,
) -> CaseStudy:
    """Simulate every packet of ``flow`` around ``event`` for each scheme."""
    window_start = max(0.0, event.start_s - lead_s)
    window_end = min(timeline.duration_s, event.end_s + tail_s)
    outcomes: dict[str, PacketSimOutcome] = {}
    for name in scheme_names:
        policy = make_policy(name)
        outcomes[name] = simulate_packets(
            topology,
            timeline,
            flow,
            service,
            policy,
            window_start,
            window_end,
            seed=seed,
            config=config,
        )
    return CaseStudy(flow, event, window_start, window_end, outcomes)


def bucketed_delivery(
    outcome: PacketSimOutcome, bucket_s: float = 5.0
) -> list[tuple[float, float]]:
    """On-time delivery rate per time bucket: ``(bucket_start_s, rate)``.

    This is the series the paper's case-study figure plots per scheme.
    """
    require(bucket_s > 0, "bucket size must be positive")
    if not outcome.records:
        return []
    start = outcome.records[0].send_time_s
    buckets: dict[int, list[bool]] = {}
    for record in outcome.records:
        index = int((record.send_time_s - start) // bucket_s)
        buckets.setdefault(index, []).append(record.on_time)
    series = []
    for index in sorted(buckets):
        sample = buckets[index]
        series.append((start + index * bucket_s, sum(sample) / len(sample)))
    return series
