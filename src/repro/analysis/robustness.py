"""Multi-seed robustness analysis of the headline results.

Heavy-tailed problem episodes make any single trace noisy; the paper's
claims should (and do) hold across traces.  This module runs the full
evaluation over several seeds and aggregates gap coverage and cost
overhead into mean / min / max summaries -- the numbers EXPERIMENTS.md
reports and the E10 bench regenerates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.metrics import DEFAULT_BASELINE, DEFAULT_OPTIMAL, gap_coverage
from repro.core.graph import Topology
from repro.netmodel.scenarios import Scenario, generate_timeline
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.simulation.cost import cost_comparison
from repro.simulation.results import ReplayConfig
from repro.util.stats import mean
from repro.util.validation import require

__all__ = ["SeedOutcome", "RobustnessSummary", "run_seed_sweep", "summarize"]


@dataclass(frozen=True)
class SeedOutcome:
    """Headline metrics of one seed's full replay."""

    seed: int
    gap_coverage: dict[str, float]  # scheme -> fraction
    cost_overhead_targeted: float  # vs two disjoint paths
    unavailable_s: dict[str, float]


@dataclass(frozen=True)
class RobustnessSummary:
    """Aggregate of a seed sweep for one scheme."""

    scheme: str
    mean_coverage: float
    min_coverage: float
    max_coverage: float
    seeds: int


def run_seed_sweep(
    topology: Topology,
    scenario: Scenario,
    flows: Sequence[FlowSpec],
    service: ServiceSpec,
    seeds: Sequence[int],
    scheme_names: Sequence[str] = (
        "static-single",
        DEFAULT_BASELINE,
        "static-two-disjoint",
        "dynamic-two-disjoint",
        "targeted",
        DEFAULT_OPTIMAL,
    ),
    config: ReplayConfig = ReplayConfig(),
    max_workers: int = 0,
    use_cache: bool = False,
) -> list[SeedOutcome]:
    """Replay the full evaluation once per seed.

    Each seed's replay is an independent shard-and-merge job on the
    execution engine; ``max_workers``/``use_cache`` parallelise it and
    reuse cached shards across sweep invocations (the E10 bench sets
    both from the ``REPRO_BENCH_*`` environment variables).
    """
    # Imported lazily: repro.analysis is pulled in by netmodel's package
    # init, which the execution engine's own imports would re-enter.
    from repro.exec.engine import run_replay_parallel

    require(bool(seeds), "need at least one seed")
    outcomes = []
    for seed in seeds:
        _events, timeline = generate_timeline(topology, scenario, seed=seed)
        result, _telemetry = run_replay_parallel(
            topology,
            timeline,
            flows,
            service,
            scheme_names,
            config,
            max_workers=max_workers,
            use_cache=use_cache,
            label=f"seed sweep (seed {seed})",
        )
        coverage = {
            scheme: gap_coverage(result, scheme)
            for scheme in scheme_names
            if scheme not in (DEFAULT_BASELINE, DEFAULT_OPTIMAL)
        }
        comparison = {c.scheme: c for c in cost_comparison(result)}
        outcomes.append(
            SeedOutcome(
                seed=seed,
                gap_coverage=coverage,
                cost_overhead_targeted=comparison["targeted"].overhead_vs_baseline,
                unavailable_s={
                    scheme: result.totals(scheme).unavailable_s
                    for scheme in scheme_names
                },
            )
        )
    return outcomes


def summarize(outcomes: Sequence[SeedOutcome]) -> list[RobustnessSummary]:
    """Per-scheme coverage statistics across seeds."""
    require(bool(outcomes), "need at least one outcome")
    schemes = sorted(outcomes[0].gap_coverage)
    summaries = []
    for scheme in schemes:
        values = [outcome.gap_coverage[scheme] for outcome in outcomes]
        summaries.append(
            RobustnessSummary(
                scheme=scheme,
                mean_coverage=mean(values),
                min_coverage=min(values),
                max_coverage=max(values),
                seeds=len(values),
            )
        )
    return summaries
