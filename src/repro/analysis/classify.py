"""Problem classification from each flow's perspective (experiment E1).

The paper analysed its recorded data and found that the episodes two
disjoint paths cannot handle "typically involve problems around a source
or destination".  This module reproduces that analysis over a generated
trace: every problem event is classified, per flow it could affect, into
the paper's categories.

Two classifications are provided:

* :func:`classify_events_for_flows` -- *ground truth*: uses the
  generator's knowledge of where each event struck;
* :func:`classifier_verdicts` -- *online*: feeds the event's conditions
  through the same :class:`~repro.core.detection.ProblemClassifier` the
  targeted policy uses, so tests (and E1) can check that online detection
  agrees with ground truth.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.detection import ProblemClassifier, ProblemType
from repro.core.graph import Topology
from repro.netmodel.conditions import ConditionTimeline
from repro.netmodel.events import EventKind, ProblemEvent
from repro.netmodel.topology import FlowSpec

__all__ = [
    "FlowProblem",
    "attribute_unavailability",
    "attribution_matrix",
    "classify_events_for_flows",
    "classifier_verdicts",
    "classification_distribution",
]

#: Category labels in the paper's presentation order.
CATEGORY_ORDER: tuple[str, ...] = (
    "destination",
    "source",
    "source+destination",
    "middle",
)


@dataclass(frozen=True)
class FlowProblem:
    """One (event, flow) pair that could disrupt the flow."""

    flow: FlowSpec
    event: ProblemEvent
    category: str  # one of CATEGORY_ORDER


def _relevant_to_flow(
    topology: Topology, flow: FlowSpec, event: ProblemEvent, relevant_edges: frozenset
) -> bool:
    """Could this event disrupt this flow at all?

    An event matters when it degrades at least one edge a timely route for
    the flow could use (the flow's time-constrained-flooding edge set).
    """
    return bool(event.affected_edges & relevant_edges)


def _categorise(flow: FlowSpec, event: ProblemEvent) -> str:
    """Ground-truth category of an event for one flow."""
    nodes = event.affected_nodes
    touches_source = any(flow.source in edge for edge in event.affected_edges)
    touches_destination = any(
        flow.destination in edge for edge in event.affected_edges
    )
    if event.kind is EventKind.NODE:
        if event.location == flow.source:
            return "source"
        if event.location == flow.destination:
            return "destination"
        return "middle"
    if touches_source and touches_destination:
        return "source+destination"
    if touches_source:
        return "source"
    if touches_destination:
        return "destination"
    del nodes
    return "middle"


def classify_events_for_flows(
    topology: Topology,
    flows: Sequence[FlowSpec],
    events: Iterable[ProblemEvent],
    deadline_ms: float,
    include_kinds: frozenset[EventKind] = frozenset(
        {EventKind.NODE, EventKind.LINK}
    ),
) -> list[FlowProblem]:
    """Ground-truth (event, flow) problems with categories.

    Only loss events (NODE/LINK by default) count as "problems"; latency
    and background events are below the paper's problem threshold.
    """
    from repro.core.builders import time_constrained_flooding_graph

    relevant_by_flow = {
        flow: time_constrained_flooding_graph(
            topology, flow.source, flow.destination, deadline_ms
        ).edges
        for flow in flows
    }
    problems: list[FlowProblem] = []
    for event in events:
        if event.kind not in include_kinds:
            continue
        for flow in flows:
            if not _relevant_to_flow(topology, flow, event, relevant_by_flow[flow]):
                continue
            problems.append(FlowProblem(flow, event, _categorise(flow, event)))
    return problems


def classification_distribution(
    problems: Iterable[FlowProblem],
) -> dict[str, float]:
    """Fraction of flow-problems per category (E1's table rows)."""
    counts = Counter(problem.category for problem in problems)
    total = sum(counts.values())
    if total == 0:
        return {category: 0.0 for category in CATEGORY_ORDER}
    return {
        category: counts.get(category, 0) / total for category in CATEGORY_ORDER
    }


def attribute_unavailability(
    topology: Topology,
    timeline: ConditionTimeline,
    result,
    scheme: str = "static-two-disjoint",
    classifier: ProblemClassifier | None = None,
) -> dict[str, float]:
    """Unavailable seconds of ``scheme`` attributed to problem locations.

    This is the paper's claim C3 made quantitative: *among the time two
    disjoint paths fail to deliver on time, how much coincides with a
    source problem, a destination problem, both, or only middle trouble?*
    Requires a replay run with ``collect_windows=True`` so the per-window
    unavailability is available.

    Returns seconds per category (plus ``"none"`` for unavailability with
    no concurrent classified problem, e.g. sub-threshold background loss).
    """
    classifier = classifier or ProblemClassifier()
    attribution: dict[str, float] = {
        "destination": 0.0,
        "source": 0.0,
        "source+destination": 0.0,
        "middle": 0.0,
        "none": 0.0,
    }
    verdict_names = {
        ProblemType.SOURCE: "source",
        ProblemType.DESTINATION: "destination",
        ProblemType.SOURCE_AND_DESTINATION: "source+destination",
        ProblemType.MIDDLE: "middle",
        ProblemType.NONE: "none",
    }
    for stats in result:
        if stats.scheme != scheme:
            continue
        if not stats.windows:
            raise ValueError(
                "attribute_unavailability needs windows; rerun the replay "
                "with ReplayConfig(collect_windows=True)"
            )
        flow = stats.flow
        for window in stats.windows:
            unavailable = (1.0 - window.on_time_probability) * window.duration_s
            if unavailable <= 0.0:
                continue
            loss_rates = timeline.loss_rates_at(window.start_s)
            assessment = classifier.classify(
                topology, flow.source, flow.destination, loss_rates
            )
            attribution[verdict_names[assessment.problem_type]] += unavailable
    return attribution


def attribution_matrix(
    topology: Topology,
    timeline: ConditionTimeline,
    result,
    schemes: Sequence[str] | None = None,
    classifier: ProblemClassifier | None = None,
) -> dict[str, dict[str, float]]:
    """Per-scheme unavailability attribution: ``scheme -> category -> s``.

    The paper's "where does each scheme still fail?" analysis: single-path
    schemes bleed everywhere, two disjoint paths only at endpoints,
    targeted redundancy almost nowhere.  Requires a replay run with
    ``collect_windows=True``.
    """
    if schemes is None:
        schemes = list(result.schemes)
    return {
        scheme: attribute_unavailability(
            topology, timeline, result, scheme=scheme, classifier=classifier
        )
        for scheme in schemes
    }


def classifier_verdicts(
    topology: Topology,
    timeline: ConditionTimeline,
    problems: Sequence[FlowProblem],
    classifier: ProblemClassifier | None = None,
) -> list[tuple[FlowProblem, ProblemType]]:
    """Run the online classifier at each problem's midpoint.

    Returns the (ground truth, online verdict) pairs so callers can build
    agreement statistics; sampling the midpoint of the first burst keeps
    this cheap while hitting a moment the problem is live.
    """
    classifier = classifier or ProblemClassifier()
    verdicts = []
    for problem in problems:
        burst = problem.event.bursts[0]
        moment = min(
            burst.start_s + burst.duration_s / 2.0,
            timeline.duration_s,
        )
        loss_rates = timeline.loss_rates_at(moment)
        assessment = classifier.classify(
            topology, problem.flow.source, problem.flow.destination, loss_rates
        )
        verdicts.append((problem, assessment.problem_type))
    return verdicts
