"""Analysis of replay results: the paper's metrics and tables.

* :mod:`repro.analysis.metrics` -- unavailability, availability, and the
  headline *gap coverage* metric (claims C4/C5);
* :mod:`repro.analysis.classify` -- problem classification from each
  flow's perspective (claim C3, experiment E1), both from generator ground
  truth and through the online classifier;
* :mod:`repro.analysis.cdf` -- delivery-latency distributions (E6);
* :mod:`repro.analysis.casestudy` -- per-scheme delivery timelines around
  a single problem episode (E4);
* :mod:`repro.analysis.reporting` -- renders every experiment's table.
"""

from repro.analysis.classify import (
    FlowProblem,
    attribute_unavailability,
    attribution_matrix,
    classify_events_for_flows,
    classification_distribution,
)
from repro.analysis.availability import outage_episodes, summarize_outages
from repro.analysis.degradation import (
    degradation_rows,
    hard_events,
    time_to_recover,
    worst_window_on_time,
)
from repro.analysis.robustness import run_seed_sweep, summarize
from repro.analysis.metrics import (
    gap_coverage,
    per_flow_gap_coverage,
    scheme_performance_rows,
)
from repro.analysis.reporting import (
    format_attribution_matrix,
    format_classification_table,
    format_cost_table,
    format_degradation_table,
    format_per_flow_table,
    format_scheme_performance_table,
)

__all__ = [
    "FlowProblem",
    "attribute_unavailability",
    "attribution_matrix",
    "classification_distribution",
    "classify_events_for_flows",
    "degradation_rows",
    "hard_events",
    "time_to_recover",
    "worst_window_on_time",
    "format_attribution_matrix",
    "format_classification_table",
    "format_cost_table",
    "format_degradation_table",
    "format_per_flow_table",
    "format_scheme_performance_table",
    "gap_coverage",
    "outage_episodes",
    "summarize_outages",
    "per_flow_gap_coverage",
    "run_seed_sweep",
    "summarize",
    "scheme_performance_rows",
]
