"""The lossy, delaying message fabric between overlay daemons.

``SimNetwork`` owns the mapping from the abstract condition timeline to
individual message fates: each transmission on an overlay link is dropped
with the link's current loss rate and otherwise delivered after the
link's current effective latency plus a small keyed jitter.  Drops are
drawn from a :class:`~repro.util.rng.DeterministicStream` keyed by
(edge, message id), so a seeded run is exactly reproducible.

A :class:`ChaosPlane` (see :mod:`repro.chaos.injector`) can be attached
to model faults beyond what the condition timeline expresses: partitions
and blackholes (the edge is administratively blocked), duplication,
reordering delays, and corruption.  While a chaos plane is attached every
message is sealed in a checksummed :class:`~repro.overlay.messages.Frame`
so corrupted copies are *detectably* damaged and dropped by the receiver,
not silently mutated.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol

from repro.core.graph import Edge, NodeId, Topology

if TYPE_CHECKING:  # pragma: no cover - typing only (repro.obs is optional)
    from repro.obs import Observability
from repro.netmodel.conditions import ConditionTimeline
from repro.overlay.kernel import EventKernel
from repro.overlay.messages import DataPacket, seal
from repro.util.rng import DeterministicStream
from repro.util.validation import require

__all__ = ["SimNetwork", "MessageSink", "ChaosPlane", "MessageEffects"]


class MessageSink(Protocol):
    """What the network delivers messages to (an overlay node)."""

    def receive(self, from_node: NodeId, message: object) -> None:
        """Handle one delivered message from a neighbouring daemon."""


class MessageEffects:
    """Per-message fault decisions handed back by a chaos plane."""

    __slots__ = ("copies", "extra_delays_ms", "corrupt_copies")

    def __init__(
        self,
        copies: int = 1,
        extra_delays_ms: tuple[float, ...] = (0.0,),
        corrupt_copies: frozenset[int] = frozenset(),
    ) -> None:
        require(copies >= 0, "copies must be >= 0")
        require(
            len(extra_delays_ms) == copies,
            "one extra delay per transmitted copy",
        )
        self.copies = copies
        self.extra_delays_ms = extra_delays_ms
        self.corrupt_copies = corrupt_copies


#: The clean case: one pristine copy, no extra delay.
_CLEAN_EFFECTS = MessageEffects()


class ChaosPlane(Protocol):
    """Fault decisions injected under the message fabric."""

    def blocked(self, edge: Edge) -> bool:
        """Is the directed edge currently blackholed or partitioned away?"""

    def message_effects(self, edge: Edge, message_id: int) -> MessageEffects:
        """Duplication / reordering / corruption applied to one message."""


class SimNetwork:
    """Delivers messages between neighbouring overlay daemons."""

    def __init__(
        self,
        topology: Topology,
        timeline: ConditionTimeline,
        kernel: EventKernel,
        seed: int = 0,
        jitter_ms: float = 0.3,
        obs: "Observability | None" = None,
    ) -> None:
        require(topology.frozen, "network requires a frozen topology")
        self.topology = topology
        self.timeline = timeline
        self.kernel = kernel
        self.seed = seed
        self.jitter_ms = jitter_ms
        self._stream = DeterministicStream(seed, "overlay-net")
        self._sinks: dict[NodeId, MessageSink] = {}
        self._message_counter = 0
        #: Optional fault layer (installed by a chaos injector).
        self.chaos: ChaosPlane | None = None
        #: Observability (None = off; one identity check per send).
        self.obs: "Observability | None" = (
            obs if obs is not None and obs.enabled else None
        )
        # Statistics, per directed edge.
        self.sent: dict[Edge, int] = {}
        self.dropped: dict[Edge, int] = {}
        # Chaos statistics (network-wide).
        self.blackholed = 0
        self.duplicated = 0
        self.corrupted = 0

    def register(self, node_id: NodeId, sink: MessageSink) -> None:
        """Attach the message sink (daemon) for ``node_id``."""
        require(self.topology.has_node(node_id), f"unknown node {node_id!r}")
        require(node_id not in self._sinks, f"node {node_id!r} already registered")
        self._sinks[node_id] = sink

    def send(self, from_node: NodeId, to_node: NodeId, message: object) -> None:
        """Transmit one message on the directed overlay link.

        Sending on a non-existent link is a programming error (daemons
        only talk to neighbours); sending to an unregistered node silently
        drops (models a crashed daemon).
        """
        edge = (from_node, to_node)
        require(
            self.topology.has_edge(*edge),
            f"no overlay link {from_node!r} -> {to_node!r}",
        )
        self._message_counter += 1
        message_id = self._message_counter
        self.sent[edge] = self.sent.get(edge, 0) + 1
        if self.obs is not None:
            self._observe_send(edge, message)
        if self.chaos is not None and self.chaos.blocked(edge):
            self.blackholed += 1
            if self.obs is not None:
                self._observe_loss(edge, message, "hop.blackholed")
            return
        now = self.kernel.now
        state = self.timeline.state_at(edge, min(now, self.timeline.duration_s))
        if state.loss_rate > 0.0 and self._stream.bernoulli(
            state.loss_rate, "drop", edge, message_id
        ):
            self.dropped[edge] = self.dropped.get(edge, 0) + 1
            if self.obs is not None:
                self._observe_loss(edge, message, "hop.drop")
            return
        latency_ms = self.topology.latency(*edge) + state.extra_latency_ms
        if self.jitter_ms > 0.0:
            latency_ms += self.jitter_ms * self._stream.uniform(
                "jitter", edge, message_id
            )
        sink = self._sinks.get(to_node)
        if sink is None:
            if self.obs is not None:
                self._observe_loss(edge, message, "hop.to_crashed")
            return
        if self.obs is not None:
            self._observe_hop(edge, message, latency_ms)
        if self.chaos is None:
            deliver: Callable[[], None] = lambda: sink.receive(from_node, message)
            self.kernel.schedule(latency_ms / 1000.0, deliver)
            return
        self._deliver_with_effects(
            sink, from_node, edge, message, message_id, latency_ms
        )

    def _deliver_with_effects(
        self,
        sink: MessageSink,
        from_node: NodeId,
        edge: Edge,
        message: object,
        message_id: int,
        latency_ms: float,
    ) -> None:
        """Chaos path: seal the message and apply per-copy fault effects."""
        assert self.chaos is not None
        effects = self.chaos.message_effects(edge, message_id)
        if effects.copies == 0:
            return
        self.duplicated += effects.copies - 1
        frame = seal(message)
        for copy in range(effects.copies):
            delivered = frame
            if copy in effects.corrupt_copies:
                self.corrupted += 1
                delivered = frame.corrupted()
            delay_ms = latency_ms + max(0.0, effects.extra_delays_ms[copy])
            self.kernel.schedule(
                delay_ms / 1000.0,
                lambda f=delivered: sink.receive(from_node, f),
            )

    # -- observability -----------------------------------------------------------
    #
    # Per-link counters mirror the ``sent``/``dropped`` dicts exactly (a
    # test holds them to bitwise agreement), and each data-packet hop
    # becomes a span linked to its packet's journey span, which is what
    # lets a trace answer "which link delayed which packet".

    @staticmethod
    def _edge_label(edge: Edge) -> str:
        return f"{edge[0]}->{edge[1]}"

    def _observe_send(self, edge: Edge, message: object) -> None:
        metrics = self.obs.metrics
        metrics.counter(f"net.sent.{self._edge_label(edge)}").inc()
        metrics.counter(f"net.kind.{type(message).__name__}").inc()

    def _observe_loss(self, edge: Edge, message: object, reason: str) -> None:
        label = self._edge_label(edge)
        if reason == "hop.drop":
            self.obs.metrics.counter(f"net.dropped.{label}").inc()
        else:
            self.obs.metrics.counter(f"net.lost.{reason}").inc()
        if isinstance(message, DataPacket):
            self.obs.tracer.instant(
                reason,
                "net",
                parent_id=self.obs.tracer.parent_id(
                    ("pkt", message.flow, message.sequence)
                ),
                edge=label,
                flow=message.flow,
                seq=message.sequence,
            )

    def _observe_hop(self, edge: Edge, message: object, latency_ms: float) -> None:
        if not isinstance(message, DataPacket):
            return
        now = self.kernel.now
        self.obs.tracer.complete(
            "hop",
            "net",
            now,
            now + latency_ms / 1000.0,
            parent_id=self.obs.tracer.parent_id(
                ("pkt", message.flow, message.sequence)
            ),
            edge=self._edge_label(edge),
            flow=message.flow,
            seq=message.sequence,
            latency_ms=latency_ms,
        )

    # -- stats -------------------------------------------------------------------

    def total_sent(self) -> int:
        """Total messages transmitted on all links."""
        return sum(self.sent.values())

    def total_dropped(self) -> int:
        """Total messages dropped by lossy links."""
        return sum(self.dropped.values())
