"""Protocol-level scheme evaluation.

The replay engines score routing schemes analytically; this runner scores
them *through the full protocol stack*: for each scheme it deploys a
complete overlay (daemons, monitoring, link-state, forwarding, apps) over
the same condition timeline and the same network seed, runs real traffic,
and reports end-to-end outcomes.  Used to validate that the deployable
system achieves what the analysis promises (and by the protocol-level
cross-validation bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.graph import Topology
from repro.netmodel.conditions import ConditionTimeline
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.overlay.harness import build_overlay
from repro.overlay.node import NodeConfig
from repro.overlay.transport import FlowReport
from repro.routing.registry import STANDARD_SCHEME_NAMES
from repro.util.validation import require

__all__ = ["ProtocolRunResult", "run_protocol_evaluation"]


@dataclass(frozen=True)
class ProtocolRunResult:
    """Outcome of one scheme's protocol-level run."""

    scheme: str
    reports: dict[str, FlowReport]  # flow name -> report
    messages_sent: int
    messages_dropped: int
    graph_switches: int
    events_processed: int
    control_messages: int = 0  # hellos, acks, link-state updates
    run_duration_s: float = 0.0

    @property
    def sent(self) -> int:
        """Application packets sent across all flows."""
        return sum(report.sent for report in self.reports.values())

    @property
    def on_time(self) -> int:
        """Packets delivered within the deadline."""
        return sum(report.on_time for report in self.reports.values())

    @property
    def lost(self) -> int:
        """Packets never delivered."""
        return sum(report.lost for report in self.reports.values())

    @property
    def late(self) -> int:
        """Packets delivered past the deadline."""
        return sum(report.late for report in self.reports.values())

    @property
    def on_time_fraction(self) -> float:
        """Fraction of sent packets delivered on time."""
        return self.on_time / self.sent if self.sent else 1.0

    @property
    def data_messages_per_packet(self) -> float:
        """Average overlay transmissions per application packet.

        Includes every copy forwarded on every link (the paper's cost
        metric), excluding control traffic, which is why the denominator
        is packets rather than all messages.
        """
        if not self.sent:
            return 0.0
        return self.messages_sent / self.sent

    @property
    def control_messages_per_second(self) -> float:
        """Network-wide control-plane rate (hellos, acks, LSAs).

        Control load is a property of the overlay (nodes x links x probe
        cadence), not of the routing scheme or the traffic volume -- the
        overlay's fixed operating cost.
        """
        if self.run_duration_s <= 0:
            return 0.0
        return self.control_messages / self.run_duration_s


def run_protocol_evaluation(
    topology: Topology,
    timeline: ConditionTimeline,
    flows: Sequence[FlowSpec],
    service: ServiceSpec,
    scheme_names: Sequence[str] = STANDARD_SCHEME_NAMES,
    duration_s: float | None = None,
    warmup_s: float = 5.0,
    drain_s: float = 1.0,
    seed: int = 0,
    node_config: NodeConfig = NodeConfig(),
    update_interval_s: float = 0.25,
) -> dict[str, ProtocolRunResult]:
    """Run every scheme through the full stack over the same conditions.

    The network seed is shared, so link-level message fates are drawn
    from the same random stream family across schemes (not identical
    per-packet -- message ids differ -- but statistically matched).
    ``warmup_s`` lets monitoring converge before traffic starts;
    ``drain_s`` lets in-flight packets land before reading reports.
    """
    require(bool(flows), "need at least one flow")
    if duration_s is None:
        duration_s = timeline.duration_s - warmup_s - drain_s
    require(
        warmup_s + duration_s + drain_s <= timeline.duration_s + 1e-9,
        "run does not fit inside the timeline",
    )
    results: dict[str, ProtocolRunResult] = {}
    for scheme in scheme_names:
        harness = build_overlay(
            topology,
            timeline,
            flows=(),
            service=service,
            seed=seed,
            node_config=node_config,
        )
        for node in harness.nodes.values():
            node.start()
        harness.kernel.run_until(warmup_s)
        for flow in flows:
            harness.add_flow(flow, service, scheme, update_interval_s)
        for daemon in harness.daemons.values():
            daemon.start()
        data_baseline = sum(
            node.stats["data_forwarded"] for node in harness.nodes.values()
        )
        network_baseline = harness.network.total_sent()
        for sender in harness.senders.values():
            sender.start()
        harness.kernel.run_until(warmup_s + duration_s)
        harness.stop_traffic()
        harness.kernel.run_until(warmup_s + duration_s + drain_s)
        data_messages = (
            sum(node.stats["data_forwarded"] for node in harness.nodes.values())
            - data_baseline
        )
        all_messages = harness.network.total_sent() - network_baseline
        results[scheme] = ProtocolRunResult(
            scheme=scheme,
            reports=dict(harness.reports),
            messages_sent=data_messages,
            messages_dropped=harness.network.total_dropped(),
            graph_switches=sum(
                daemon.graph_switches for daemon in harness.daemons.values()
            ),
            events_processed=harness.kernel.processed,
            control_messages=max(0, all_messages - data_messages),
            run_duration_s=duration_s + drain_s,
        )
    return results
