"""Message-level overlay-network substrate (the Spines-like system).

The paper's transport service runs on an overlay of daemons deployed at
data-center sites.  This package implements that system as a discrete-
event simulation at full protocol fidelity -- every hello, link-state
update, data packet copy and ack is an individual message subject to the
current link conditions:

* :mod:`repro.overlay.kernel` -- the discrete-event core;
* :mod:`repro.overlay.messages` -- the protocol message types;
* :mod:`repro.overlay.network` -- the lossy, delaying message fabric
  driven by a :class:`~repro.netmodel.conditions.ConditionTimeline`;
* :mod:`repro.overlay.node` -- the overlay daemon: hello-based link
  monitoring, link-state flooding, dissemination-graph forwarding with
  duplicate suppression, optional hop-by-hop recovery;
* :mod:`repro.overlay.daemon` -- the per-flow routing daemon that turns
  the link-state database into dissemination-graph decisions;
* :mod:`repro.overlay.transport` -- sending/receiving applications with
  deadline accounting;
* :mod:`repro.overlay.harness` -- one-call assembly of a whole overlay.

The trace-replay engines (:mod:`repro.simulation`) answer the paper's
quantitative questions cheaply; this substrate exists to demonstrate that
the *protocols* -- monitoring, flooding, graph switching -- actually work
end to end, and is exercised by the integration tests and examples.
"""

from repro.overlay.collect import TraceCollector, collect_measured_trace
from repro.overlay.harness import OverlayHarness, build_overlay
from repro.overlay.runner import ProtocolRunResult, run_protocol_evaluation
from repro.overlay.kernel import EventKernel
from repro.overlay.network import SimNetwork
from repro.overlay.node import NodeConfig, OverlayNode

__all__ = [
    "EventKernel",
    "ProtocolRunResult",
    "TraceCollector",
    "collect_measured_trace",
    "run_protocol_evaluation",
    "NodeConfig",
    "OverlayHarness",
    "OverlayNode",
    "SimNetwork",
    "build_overlay",
]
