"""One-call assembly of a complete overlay deployment.

``build_overlay`` wires an :class:`~repro.overlay.kernel.EventKernel`, a
:class:`~repro.overlay.network.SimNetwork` over a condition timeline, one
:class:`~repro.overlay.node.OverlayNode` per site, and -- per flow -- a
routing daemon, a sender, and a receiver.  ``run`` advances the whole
system and returns per-flow reports, giving examples and integration
tests a single entry point to "deploy the system and send traffic".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.graph import NodeId, Topology
from repro.netmodel.conditions import ConditionTimeline
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.overlay.daemon import FlowRoutingDaemon
from repro.overlay.kernel import EventKernel
from repro.overlay.network import SimNetwork
from repro.overlay.node import NodeConfig, OverlayNode
from repro.overlay.transport import FlowReport, ReceivingApp, SendingApp
from repro.routing.base import RoutingPolicy
from repro.routing.registry import make_policy
from repro.util.validation import require

__all__ = ["OverlayHarness", "build_overlay"]


@dataclass
class OverlayHarness:
    """A fully wired overlay: kernel, network, daemons, apps."""

    topology: Topology
    timeline: ConditionTimeline
    kernel: EventKernel
    network: SimNetwork
    nodes: dict[NodeId, OverlayNode]
    daemons: dict[str, FlowRoutingDaemon] = field(default_factory=dict)
    senders: dict[str, SendingApp] = field(default_factory=dict)
    reports: dict[str, FlowReport] = field(default_factory=dict)
    # Chaos attachments, populated lazily by ``run(faults=...)``.  Typed
    # loosely because repro.chaos imports this module.
    injector: object | None = None
    invariants: object | None = None
    # Observability bundle (None = off); shared by kernel, network, nodes.
    obs: object | None = None

    def add_flow(
        self,
        flow: FlowSpec,
        service: ServiceSpec,
        policy: RoutingPolicy | str,
        update_interval_s: float = 0.5,
    ) -> FlowReport:
        """Attach a flow: routing daemon at the source, apps at both ends."""
        require(flow.name not in self.daemons, f"flow {flow.name} already added")
        if isinstance(policy, str):
            policy = make_policy(policy)
        policy.set_observability(self.obs)
        daemon = FlowRoutingDaemon(
            self.nodes[flow.source], flow, service, policy, update_interval_s
        )
        receiver = ReceivingApp(self.nodes[flow.destination], flow, service)
        sender = SendingApp(self.nodes[flow.source], daemon, receiver)
        self.daemons[flow.name] = daemon
        self.senders[flow.name] = sender
        self.reports[flow.name] = receiver.report
        return receiver.report

    def start(self) -> None:
        """Start every daemon and application."""
        for node in self.nodes.values():
            node.start()
        for daemon in self.daemons.values():
            daemon.start()
        for sender in self.senders.values():
            sender.start()

    def run(
        self,
        duration_s: float,
        max_events: int | None = None,
        faults: "object | None" = None,
    ) -> int:
        """Advance the simulation; returns the number of events processed.

        Passing a :class:`~repro.chaos.faults.FaultSchedule` as ``faults``
        installs a chaos injector (fault times are relative to *this*
        call) and an invariant checker, available afterwards as
        ``self.injector`` and ``self.invariants``.  A harness accepts at
        most one schedule over its lifetime.
        """
        if faults is not None:
            # Imported lazily: repro.chaos builds on this module.
            from repro.chaos.injector import ChaosInjector
            from repro.chaos.invariants import InvariantChecker

            require(
                self.injector is None,
                "this harness already has a fault schedule installed",
            )
            self.invariants = InvariantChecker().attach(self, faults)
            if self.obs is not None:
                self.invariants.taps.append(self._on_violation)
            injector = ChaosInjector(self, faults)
            injector.install()
            self.injector = injector
        return self.kernel.run_until(self.kernel.now + duration_s, max_events)

    def _on_violation(self, violation) -> None:
        """Invariant breach: record it and snapshot the flight recorder."""
        obs = self.obs
        obs.metrics.counter("chaos.invariant_violations").inc()
        obs.tracer.instant(
            "invariant.violation",
            "chaos",
            invariant=violation.invariant,
            detail=violation.detail,
        )
        obs.flight.trigger(
            f"invariant {violation.invariant}: {violation.detail}",
            at_s=violation.at_s,
        )

    def flow_health(self, threshold: float = 0.9) -> list[str]:
        """Names of flows below ``threshold`` on-time fraction.

        With observability attached each unhealthy flow also triggers a
        flight-recorder snapshot, preserving the tail of activity that
        led to the degradation.
        """
        fractions = {
            name: report.on_time_fraction
            for name, report in self.reports.items()
        }
        if self.obs is not None:
            return self.obs.check_flow_health(fractions, threshold)
        return sorted(
            name for name, value in fractions.items() if value < threshold
        )

    def stop_traffic(self) -> None:
        """Stop every sending application (daemons keep running)."""
        for sender in self.senders.values():
            sender.stop()

    # -- reporting ------------------------------------------------------------

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-flow headline numbers for quick inspection."""
        result = {}
        for name, report in self.reports.items():
            result[name] = {
                "sent": report.sent,
                "delivered": report.delivered,
                "on_time": report.on_time,
                "on_time_fraction": report.on_time_fraction,
            }
        return result


def build_overlay(
    topology: Topology,
    timeline: ConditionTimeline,
    flows: Sequence[FlowSpec] = (),
    service: ServiceSpec | None = None,
    scheme: str = "targeted",
    seed: int = 0,
    node_config: NodeConfig = NodeConfig(),
    update_interval_s: float = 0.5,
    obs: object | None = None,
) -> OverlayHarness:
    """Build a whole overlay with one daemon per site and the given flows.

    ``obs`` (an :class:`repro.obs.Observability`) instruments the kernel,
    the network, and every node; its tracer clock is re-pointed at this
    harness's kernel.  ``None`` builds the uninstrumented overlay.
    """
    require(topology.frozen, "harness requires a frozen topology")
    if obs is not None and not getattr(obs, "enabled", False):
        obs = None
    kernel = EventKernel()
    if obs is not None:
        obs.set_clock(lambda: kernel.now)
        kernel.attach_obs(obs)
    network = SimNetwork(topology, timeline, kernel, seed=seed, obs=obs)
    nodes = {
        node_id: OverlayNode(node_id, topology, network, kernel, node_config)
        for node_id in topology.nodes
    }
    harness = OverlayHarness(
        topology, timeline, kernel, network, nodes, obs=obs
    )
    service = service or ServiceSpec()
    for flow in flows:
        harness.add_flow(flow, service, scheme, update_interval_s)
    return harness
