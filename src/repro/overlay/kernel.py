"""Discrete-event simulation core.

Minimal and deterministic: events fire in (time, insertion order), so two
runs of the same seeded overlay produce identical traces.  Time is in
seconds (floats); the overlay's latencies are milliseconds and are
converted at the network layer.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable

from repro.util.validation import require

if TYPE_CHECKING:  # pragma: no cover - typing only (repro.obs is optional)
    from repro.obs import Observability

__all__ = ["EventKernel"]


class EventKernel:
    """A priority-queue discrete-event scheduler."""

    def __init__(self) -> None:
        self._now = 0.0
        self._sequence = 0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._processed = 0
        # Observability (None = off, the cost of one identity check).
        self._obs: "Observability | None" = None
        self._enqueued_at: dict[int, float] = {}

    def attach_obs(self, obs: "Observability | None") -> None:
        """Instrument the event loop (queue depth, per-event lag).

        Lag is simulation-time waiting: how far ahead of its enqueue
        moment an event fires.  Attaching a disabled bundle is a no-op.
        """
        self._obs = obs if obs is not None and obs.enabled else None

    def _observe_event(self, time_s: float, sequence: int) -> None:
        metrics = self._obs.metrics
        metrics.counter("kernel.events").inc()
        metrics.histogram("kernel.queue_depth").observe(float(len(self._queue)))
        metrics.histogram("kernel.lag_s").observe(
            time_s - self._enqueued_at.pop(sequence, time_s)
        )

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Total events fired so far (for tests and sanity checks)."""
        return self._processed

    def schedule(self, delay_s: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay_s`` seconds from now."""
        require(delay_s >= 0, f"cannot schedule in the past (delay {delay_s})")
        self.schedule_at(self._now + delay_s, action)

    def schedule_at(self, time_s: float, action: Callable[[], None]) -> None:
        """Run ``action`` at absolute time ``time_s``."""
        require(
            time_s >= self._now,
            f"cannot schedule at {time_s} before now ({self._now})",
        )
        if self._obs is not None:
            self._enqueued_at[self._sequence] = self._now
        heapq.heappush(self._queue, (time_s, self._sequence, action))
        self._sequence += 1

    def run_until(self, end_s: float, max_events: int | None = None) -> int:
        """Process events with time <= ``end_s``; returns events processed.

        ``max_events`` guards against runaway feedback loops in tests.
        """
        require(end_s >= self._now, "cannot run backwards")
        fired = 0
        while self._queue and self._queue[0][0] <= end_s:
            if max_events is not None and fired >= max_events:
                break
            time_s, seq, action = heapq.heappop(self._queue)
            self._now = time_s
            if self._obs is not None:
                self._observe_event(time_s, seq)
            action()
            fired += 1
            self._processed += 1
        if not self._queue or self._queue[0][0] > end_s:
            self._now = end_s
        return fired

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the queue entirely (bounded); returns events processed."""
        fired = 0
        while self._queue and fired < max_events:
            time_s, seq, action = heapq.heappop(self._queue)
            self._now = time_s
            if self._obs is not None:
                self._observe_event(time_s, seq)
            action()
            fired += 1
            self._processed += 1
        return fired
