"""Sending and receiving applications with deadline accounting.

The sending app emits one packet per service interval, stamped with the
flow's current dissemination graph; the receiving app records each
packet's one-way latency and whether it met the deadline.  Together they
measure, inside the message-level simulation, exactly the quantities the
trace-replay engines compute analytically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.overlay.daemon import FlowRoutingDaemon
from repro.overlay.messages import DataPacket
from repro.overlay.node import OverlayNode
from repro.util.validation import require

__all__ = ["SendingApp", "ReceivingApp", "FlowReport"]


@dataclass
class FlowReport:
    """End-to-end outcome of one flow over a run.

    Besides the aggregate counters, the report keeps a per-packet log --
    send times and ``(sent_at_s, latency_ms)`` delivery pairs -- which is
    what lets :mod:`repro.scenarios.reconcile` score a live run against
    the analytic replay per event window instead of only end-to-end.
    """

    flow: FlowSpec
    sent: int = 0
    delivered: int = 0
    on_time: int = 0
    latencies_ms: list[float] = field(default_factory=list)
    send_times_s: list[float] = field(default_factory=list)
    deliveries: list[tuple[float, float]] = field(default_factory=list)

    @property
    def lost(self) -> int:
        """Packets never delivered."""
        return self.sent - self.delivered

    @property
    def late(self) -> int:
        """Packets delivered past the deadline."""
        return self.delivered - self.on_time

    @property
    def on_time_fraction(self) -> float:
        """Fraction of sent packets delivered on time."""
        return self.on_time / self.sent if self.sent else 1.0


class ReceivingApp:
    """Registers at the destination daemon and scores arrivals."""

    def __init__(
        self, node: OverlayNode, flow: FlowSpec, service: ServiceSpec
    ) -> None:
        require(
            node.node_id == flow.destination,
            "the receiving app runs at the flow's destination node",
        )
        self.flow = flow
        self.service = service
        self.report = FlowReport(flow)
        node.register_delivery(flow.name, self._on_packet)

    def _on_packet(self, packet: DataPacket, arrived_at_s: float) -> None:
        latency_ms = (arrived_at_s - packet.sent_at_s) * 1000.0
        self.report.delivered += 1
        self.report.latencies_ms.append(latency_ms)
        self.report.deliveries.append((packet.sent_at_s, latency_ms))
        if latency_ms <= self.service.deadline_ms:
            self.report.on_time += 1


class SendingApp:
    """Emits one packet per service interval at the source daemon."""

    def __init__(
        self,
        node: OverlayNode,
        daemon: FlowRoutingDaemon,
        receiver: ReceivingApp,
    ) -> None:
        require(
            node.node_id == daemon.flow.source,
            "the sending app runs at the flow's source node",
        )
        self.node = node
        self.daemon = daemon
        self.flow = daemon.flow
        self.service = daemon.service
        self.report = receiver.report
        self._sequence = 0
        self._running = False

    def start(self) -> None:
        """Begin sending one packet per service interval; idempotent."""
        if self._running:
            return
        self._running = True
        self.node.kernel.schedule(0.0, self._send_tick)

    def stop(self) -> None:
        """Stop sending (in-flight packets still arrive)."""
        self._running = False

    def _send_tick(self) -> None:
        if not self._running:
            return
        packet = DataPacket(
            flow=self.flow.name,
            source=self.flow.source,
            destination=self.flow.destination,
            sequence=self._sequence,
            sent_at_s=self.node.kernel.now,
            graph_encoding=self.daemon.current_encoding,
        )
        self._sequence += 1
        self.report.sent += 1
        self.report.send_times_s.append(packet.sent_at_s)
        self.node.originate(packet)
        self.node.kernel.schedule(
            self.service.send_interval_ms / 1000.0, self._send_tick
        )
