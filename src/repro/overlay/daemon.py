"""Per-flow routing daemon: link-state database -> dissemination graph.

The source node of each flow runs one :class:`FlowRoutingDaemon`.  On a
fixed cadence it reads its node's observed view (the LSDB), feeds it to
the flow's routing policy, and -- when the decision changes -- installs
the new dissemination graph, whose wire encoding stamps every subsequent
packet.  This is the piece that closes the loop from monitoring to
forwarding, end to end inside the message-level simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dgraph import DisseminationGraph
from repro.core.encoding import encode_graph
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.overlay.node import OverlayNode
from repro.routing.base import RoutingPolicy
from repro.util.validation import require

__all__ = ["FlowRoutingDaemon"]


@dataclass
class _Decision:
    graph: DisseminationGraph
    encoding: bytes
    installed_at_s: float


class FlowRoutingDaemon:
    """Drives one flow's routing policy from its source node's LSDB."""

    def __init__(
        self,
        node: OverlayNode,
        flow: FlowSpec,
        service: ServiceSpec,
        policy: RoutingPolicy,
        update_interval_s: float = 0.5,
    ) -> None:
        require(
            node.node_id == flow.source,
            "the routing daemon runs at the flow's source node",
        )
        require(update_interval_s > 0, "update interval must be positive")
        self.node = node
        self.flow = flow
        self.service = service
        self.update_interval_s = update_interval_s
        self.policy = policy.attach(node.topology, flow, service)
        initial = self.policy.update(node.kernel.now, {})
        self._decision = _Decision(
            initial, encode_graph(node.topology, initial), node.kernel.now
        )
        self.graph_switches = 0
        self._running = False

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Begin periodic policy re-evaluation; idempotent."""
        if self._running:
            return
        self._running = True
        self.node.kernel.schedule(self.update_interval_s, self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        observed = self.node.observed_view()
        graph = self.policy.update(self.node.kernel.now, observed)
        if graph != self._decision.graph:
            self._decision = _Decision(
                graph,
                encode_graph(self.node.topology, graph),
                self.node.kernel.now,
            )
            self.graph_switches += 1
        self.node.kernel.schedule(self.update_interval_s, self._tick)

    # -- queries -----------------------------------------------------------------

    @property
    def current_graph(self) -> DisseminationGraph:
        """The dissemination graph currently installed for the flow."""
        return self._decision.graph

    @property
    def current_encoding(self) -> bytes:
        """Wire encoding of the installed graph (stamped on packets)."""
        return self._decision.encoding
