"""Per-flow routing daemon: link-state database -> dissemination graph.

The source node of each flow runs one :class:`FlowRoutingDaemon`.  On a
fixed cadence it reads its node's observed view (the LSDB), feeds it to
the flow's routing policy, and -- when the decision changes -- installs
the new dissemination graph, whose wire encoding stamps every subsequent
packet.  This is the piece that closes the loop from monitoring to
forwarding, end to end inside the message-level simulation.

The daemon degrades gracefully under faults rather than propagating
them into the data plane:

* a **stalled** daemon (fault injection, or an overloaded process)
  misses update ticks but keeps its installed graph -- packets continue
  to flow on the last decision;
* when the source node is **isolated** (every neighbour declared dead)
  its LSDB is a stale view that cannot be trusted, so the daemon holds
  its last-known-good graph instead of re-routing on garbage;
* a policy that **raises** is contained: the error is counted and the
  installed graph stands;
* a freshly computed graph that the observed view says is **dead**
  (no live source->destination route) is rejected in favour of the
  last-known-good graph when that one still connects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dgraph import DisseminationGraph
from repro.core.encoding import encode_graph
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.overlay.node import OverlayNode
from repro.routing.base import RoutingPolicy, graph_connects
from repro.util.validation import require

__all__ = ["FlowRoutingDaemon"]


@dataclass
class _Decision:
    graph: DisseminationGraph
    encoding: bytes
    installed_at_s: float


class FlowRoutingDaemon:
    """Drives one flow's routing policy from its source node's LSDB."""

    def __init__(
        self,
        node: OverlayNode,
        flow: FlowSpec,
        service: ServiceSpec,
        policy: RoutingPolicy,
        update_interval_s: float = 0.5,
    ) -> None:
        require(
            node.node_id == flow.source,
            "the routing daemon runs at the flow's source node",
        )
        require(update_interval_s > 0, "update interval must be positive")
        self.node = node
        self.flow = flow
        self.service = service
        self.update_interval_s = update_interval_s
        self.policy = policy.attach(node.topology, flow, service)
        initial = self.policy.update(node.kernel.now, {})
        self._decision = _Decision(
            initial, encode_graph(node.topology, initial), node.kernel.now
        )
        self.graph_switches = 0
        self._running = False
        self._stalled = False
        # Fault/robustness counters (inspected by tests and chaos reports).
        self.ticks_missed = 0
        self.policy_errors = 0
        self.fallbacks = 0

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Begin periodic policy re-evaluation; idempotent."""
        if self._running:
            return
        self._running = True
        self.node.kernel.schedule(self.update_interval_s, self._tick)

    def stall(self) -> None:
        """Freeze policy re-evaluation (fault injection); ticks are missed."""
        self._stalled = True

    def unstall(self) -> None:
        """Resume policy re-evaluation after a stall."""
        self._stalled = False

    @property
    def stalled(self) -> bool:
        """Whether the daemon is currently stalled."""
        return self._stalled

    def _tick(self) -> None:
        if not self._running:
            return
        if self._stalled or self.node.isolated():
            # Stalled, or the local view is garbage: keep the installed
            # (last-known-good) graph and try again next tick.
            self.ticks_missed += 1
            self.node.kernel.schedule(self.update_interval_s, self._tick)
            return
        observed = self.node.observed_view()
        obs = self.node.network.obs
        try:
            graph = self.policy.update(self.node.kernel.now, observed)
        except Exception:
            # A sick policy must not take the data plane down with it.
            self.policy_errors += 1
            if obs is not None:
                obs.metrics.counter("routing.policy_errors").inc()
            graph = self._decision.graph
        if graph != self._decision.graph:
            if not graph_connects(graph, observed) and graph_connects(
                self._decision.graph, observed
            ):
                # The candidate is dead on arrival by our own view while
                # the installed graph still has a live route: hold it.
                self.fallbacks += 1
                if obs is not None:
                    obs.metrics.counter("routing.fallbacks").inc()
                    obs.tracer.instant(
                        "reroute.fallback", "routing", flow=self.flow.name,
                        held=self._decision.graph.name,
                        rejected=graph.name,
                    )
            else:
                previous = self._decision.graph.name
                self._decision = _Decision(
                    graph,
                    encode_graph(self.node.topology, graph),
                    self.node.kernel.now,
                )
                self.graph_switches += 1
                if obs is not None:
                    obs.metrics.counter("routing.switches").inc()
                    obs.tracer.instant(
                        "reroute", "routing", flow=self.flow.name,
                        from_graph=previous, to_graph=graph.name,
                        observed_edges=len(observed),
                    )
        self.node.kernel.schedule(self.update_interval_s, self._tick)

    # -- queries -----------------------------------------------------------------

    @property
    def current_graph(self) -> DisseminationGraph:
        """The dissemination graph currently installed for the flow."""
        return self._decision.graph

    @property
    def current_encoding(self) -> bytes:
        """Wire encoding of the installed graph (stamped on packets)."""
        return self._decision.encoding
