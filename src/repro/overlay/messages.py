"""Protocol message types exchanged by overlay daemons.

Messages are small frozen dataclasses; the only wire-format machinery in
the repo is the dissemination-graph bitmask
(:mod:`repro.core.encoding`), which :class:`DataPacket` carries so that
intermediate daemons can forward without per-flow installed state --
exactly the stateless-forwarding property the paper's framework enables.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass

from repro.core.graph import Edge, NodeId

__all__ = [
    "Hello",
    "HelloAck",
    "LinkStateUpdate",
    "DataPacket",
    "LinkAck",
    "Frame",
    "message_checksum",
    "seal",
    "frame_intact",
]


@dataclass(frozen=True)
class Hello:
    """Periodic probe on one overlay link (also measures it)."""

    sender: NodeId
    sequence: int
    sent_at_s: float


@dataclass(frozen=True)
class HelloAck:
    """Echo of a hello; lets the prober estimate loss and RTT."""

    sender: NodeId
    hello_sequence: int
    hello_sent_at_s: float


@dataclass(frozen=True)
class LinkStateUpdate:
    """One link's condition estimate, flooded network-wide.

    ``originator`` + ``sequence`` provide the classic link-state ordering:
    a daemon re-floods an update only the first time it sees a given
    (originator, sequence), and newer sequences supersede older ones.
    """

    originator: NodeId
    sequence: int
    edge: Edge
    loss_rate: float
    latency_ms: float
    originated_at_s: float


@dataclass(frozen=True)
class DataPacket:
    """An application packet travelling on its dissemination graph.

    ``graph_encoding`` is the bitmask wire form of the dissemination
    graph (:func:`repro.core.encoding.encode_graph`); every daemon decodes
    it to learn its own forwarding set.  ``flow`` + ``sequence`` key the
    duplicate-suppression cache.
    """

    flow: str
    source: NodeId
    destination: NodeId
    sequence: int
    sent_at_s: float
    graph_encoding: bytes


@dataclass(frozen=True)
class LinkAck:
    """Per-link acknowledgement of a data packet (hop-by-hop recovery)."""

    sender: NodeId
    flow: str
    sequence: int


# -- wire integrity ----------------------------------------------------------------
#
# When the network's fault model can corrupt messages in flight, every
# transmission is wrapped in a :class:`Frame` carrying a checksum over the
# payload fields.  The receiver verifies the frame before dispatching and
# silently drops mismatches -- the overlay analogue of a UDP/link-layer
# checksum discard.  Clean simulations skip framing entirely, so the
# pre-chaos message path (and its performance) is unchanged.


def message_checksum(message: object) -> int:
    """A deterministic 64-bit checksum over a protocol message's fields.

    Field values are all ints, floats, strings, bytes, node ids, or tuples
    thereof, whose ``repr`` is stable across runs and platforms.
    """
    fields = dataclasses.astuple(message)
    tag = type(message).__name__
    digest = hashlib.sha256(f"{tag}:{fields!r}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class Frame:
    """One checksummed transmission unit (payload + integrity word)."""

    payload: object
    checksum: int

    def corrupted(self) -> "Frame":
        """This frame with its integrity word damaged (fault injection)."""
        return Frame(self.payload, self.checksum ^ 0x1)


def seal(message: object) -> Frame:
    """Wrap ``message`` in a frame whose checksum matches its fields."""
    return Frame(message, message_checksum(message))


def frame_intact(frame: Frame) -> bool:
    """True when the frame's checksum matches its payload."""
    return frame.checksum == message_checksum(frame.payload)
