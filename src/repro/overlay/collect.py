"""Trace collection from a running overlay -- the paper's data pipeline.

The paper's evaluation rests on per-link condition data *recorded by the
overlay itself*: each daemon's monitoring produces loss/latency estimates
that were logged and later replayed against candidate routing schemes.
This module closes that loop in the reproduction:

1. run the message-level overlay under ground-truth conditions;
2. periodically sample every daemon's per-link estimates (the
   *measured* view, including estimation noise and probe granularity);
3. compile the samples into a :class:`ConditionTimeline` in the same
   format the synthetic generator produces, so the replay engines can
   evaluate schemes against *measured* rather than ground-truth data.

The difference between ground truth and the collected trace is exactly
the monitoring error a deployed system lives with; the collection tests
assert it stays small.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import Edge, Topology
from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.overlay.harness import OverlayHarness, build_overlay
from repro.overlay.node import NodeConfig
from repro.util.validation import require

__all__ = ["LinkSample", "TraceCollector", "collect_measured_trace"]

#: Loss estimates below this are treated as clean (probe noise).
LOSS_NOISE_FLOOR = 0.02

#: Latency inflation below this (ms) is treated as clean (jitter).
LATENCY_NOISE_FLOOR_MS = 2.0


@dataclass(frozen=True)
class LinkSample:
    """One sampled estimate of one directed link."""

    time_s: float
    edge: Edge
    loss_rate: float
    latency_ms: float


class TraceCollector:
    """Samples every daemon's link estimates on a fixed cadence."""

    def __init__(self, harness: OverlayHarness, sample_interval_s: float = 5.0) -> None:
        require(sample_interval_s > 0, "sample interval must be positive")
        self.harness = harness
        self.sample_interval_s = sample_interval_s
        self.samples: list[LinkSample] = []
        self._running = False

    def start(self) -> None:
        """Begin sampling on the configured cadence; idempotent."""
        if self._running:
            return
        self._running = True
        self.harness.kernel.schedule(self.sample_interval_s, self._tick)

    def stop(self) -> None:
        """Stop sampling (already-collected samples are kept)."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.harness.kernel.now
        for node in self.harness.nodes.values():
            for neighbor in node.topology.out_neighbors(node.node_id):
                self.samples.append(
                    LinkSample(
                        time_s=now,
                        edge=(node.node_id, neighbor),
                        loss_rate=node.loss_estimate(neighbor),
                        latency_ms=node.latency_estimate_ms(neighbor),
                    )
                )
        self.harness.kernel.schedule(self.sample_interval_s, self._tick)

    # -- compilation ---------------------------------------------------------

    def compile_timeline(self, duration_s: float) -> ConditionTimeline:
        """Turn the samples into a piecewise-constant condition timeline.

        Each sample's estimate holds for the sampling interval that
        produced it (the paper's recording granularity).  Noise below the
        floors is treated as clean so the measured trace does not carry
        probe jitter into the replay.
        """
        topology = self.harness.topology
        contributions: list[Contribution] = []
        for sample in self.samples:
            base_latency = topology.latency(*sample.edge)
            extra = sample.latency_ms - base_latency
            loss = sample.loss_rate if sample.loss_rate >= LOSS_NOISE_FLOOR else 0.0
            extra = extra if extra >= LATENCY_NOISE_FLOOR_MS else 0.0
            if loss <= 0.0 and extra <= 0.0:
                continue
            start = max(0.0, sample.time_s - self.sample_interval_s)
            end = min(duration_s, sample.time_s)
            if end <= start:
                continue
            contributions.append(
                Contribution(
                    sample.edge,
                    start,
                    end,
                    LinkState(
                        loss_rate=min(1.0, loss), extra_latency_ms=max(0.0, extra)
                    ),
                )
            )
        return ConditionTimeline(topology, duration_s, contributions)


def collect_measured_trace(
    topology: Topology,
    ground_truth: ConditionTimeline,
    duration_s: float | None = None,
    sample_interval_s: float = 5.0,
    seed: int = 0,
    node_config: NodeConfig | None = None,
) -> tuple[ConditionTimeline, list[LinkSample]]:
    """Run an overlay under ``ground_truth`` and record what it measures.

    Returns ``(measured_timeline, raw_samples)``.  The measured timeline
    lags reality by up to one probe window and quantises conditions to
    the sampling cadence -- exactly the artefacts of the paper's data.
    """
    if duration_s is None:
        duration_s = ground_truth.duration_s
    require(
        duration_s <= ground_truth.duration_s,
        "collection window exceeds the ground-truth timeline",
    )
    harness = build_overlay(
        topology,
        ground_truth,
        flows=(),
        seed=seed,
        node_config=node_config or NodeConfig(),
    )
    collector = TraceCollector(harness, sample_interval_s=sample_interval_s)
    harness.start()
    collector.start()
    harness.kernel.run_until(duration_s)
    collector.stop()
    return collector.compile_timeline(duration_s), collector.samples
