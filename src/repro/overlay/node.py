"""The overlay daemon: monitoring, link-state flooding, forwarding.

Each :class:`OverlayNode` is one site's daemon.  It runs three protocol
machines, all message-driven through the simulated network:

**Link monitoring.**  The daemon probes each outgoing overlay link with
periodic hellos; the neighbour echoes an ack.  A sliding window over the
most recent probes yields a loss estimate, and acked round trips yield a
smoothed latency estimate.  (Probing measures the round trip, so loss is
attributed to the probed direction -- the same simplification deployed
overlay monitors make; real problems usually hit both directions.)
After ``liveness_fail_threshold`` *consecutive* probe timeouts, with an
ack-free loss window corroborating (a merely lossy link drops probe runs
now and then; only a dead one silences a whole window), the neighbour is
declared dead: a full-loss link-state update is flooded
immediately, link-state entries originated by the dead neighbour are
purged, and re-probing backs off exponentially (bounded) so a long
outage is not hammered at the full probe rate.  The first ack from a
dead neighbour declares it alive again, restores the probe cadence, and
resets the loss window so recovery is advertised quickly.

**Link-state flooding.**  When a link's estimate moves materially, the
daemon originates a :class:`~repro.overlay.messages.LinkStateUpdate` and
floods it.  Daemons keep a link-state database (LSDB) ordered by
(originator, sequence) and re-flood only first sightings -- the classic
reliable-flooding discipline.  The LSDB is what the per-flow routing
daemon consumes as its *observed* network view.  Entries age out after
``lsa_max_age_s`` without refresh, and daemons re-originate their own
non-clean advertisements every ``lsa_refresh_interval_s``, so claims
from crashed originators cannot pin the network view forever.

**Data forwarding.**  A data packet carries its dissemination graph as an
edge bitmask.  The first time a daemon sees a (flow, sequence) it
forwards a copy on every outgoing edge of the graph and delivers locally
if it is the destination; duplicates are suppressed.  With hop-by-hop
recovery enabled, each copy is acked per link and retransmitted once on
timeout -- the overlay's latency budget allows a single local recovery
where an end-to-end retransmission would blow the deadline.

**Crash modelling.**  ``stop`` crashes the daemon (it stops probing and
ignores everything received); ``start`` is a warm restart with protocol
state intact, while ``rejoin`` is a cold restart that clears the LSDB,
the monitors, and in-flight recovery state.  The LSA sequence counter
and the per-flow delivery journal survive a cold restart (stable
storage), so post-restart advertisements still supersede pre-crash ones
and no packet is handed to the application twice.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.core.dgraph import DisseminationGraph
from repro.core.encoding import decode_graph
from repro.core.graph import Edge, NodeId, Topology
from repro.netmodel.conditions import LinkState
from repro.overlay.kernel import EventKernel
from repro.overlay.messages import (
    DataPacket,
    Frame,
    Hello,
    HelloAck,
    LinkAck,
    LinkStateUpdate,
    frame_intact,
)
from repro.overlay.network import SimNetwork
from repro.util.rng import hash_uniform
from repro.util.validation import require

__all__ = ["NodeConfig", "OverlayNode"]


@dataclass(frozen=True)
class NodeConfig:
    """Tunables of one overlay daemon."""

    hello_interval_s: float = 0.2
    hello_window: int = 25  # probes per loss estimate
    hello_timeout_s: float = 1.0  # unacked past this counts as lost
    loss_report_delta: float = 0.05  # re-advertise when estimate moves this much
    latency_report_delta_ms: float = 5.0
    latency_smoothing: float = 0.3  # EWMA weight of a new RTT sample
    dedup_window: int = 8192  # per-flow duplicate-suppression memory
    enable_recovery: bool = False
    recovery_timeout_s: float = 0.05  # per-link retransmit timer
    max_recovery_attempts: int = 1
    # -- liveness and LSDB hygiene (chaos hardening) ---------------------------
    liveness_fail_threshold: int = 8  # consecutive timeouts -> neighbour dead
    hello_backoff_factor: float = 2.0  # probe-interval growth on a dead link
    hello_backoff_max_s: float = 5.0  # probe interval never exceeds this
    lsa_refresh_interval_s: float = 5.0  # re-originate non-clean LSAs this often
    lsa_max_age_s: float = 15.0  # unrefreshed LSDB entries age out
    # -- flooding fan-out (large-topology hardening) ---------------------------
    # Cap on how many neighbours a *forwarded* LSA is re-flooded to (None =
    # all, the classic discipline and the default).  On dense meshes the
    # quadratic re-flood dominates control traffic; a cap of k keeps it
    # O(k * nodes) per update.  Originated LSAs always go to every
    # neighbour, and the kept subset is a deterministic per-(update, node)
    # hash so convergence is reproducible.  Sized below the minimum degree
    # the topology generators guarantee (>= 2), it still floods a connected
    # subgraph with overwhelming probability; periodic refreshes repair any
    # residual gap within one refresh interval.
    lsa_flood_fanout: int | None = None

    def __post_init__(self) -> None:
        require(self.hello_interval_s > 0, "hello_interval_s must be positive")
        require(self.hello_window >= 1, "hello_window must be >= 1")
        require(self.hello_timeout_s > 0, "hello_timeout_s must be positive")
        require(0 < self.latency_smoothing <= 1, "latency_smoothing in (0, 1]")
        require(self.dedup_window >= 16, "dedup_window must be >= 16")
        require(
            self.liveness_fail_threshold >= 1,
            "liveness_fail_threshold must be >= 1",
        )
        require(
            self.hello_backoff_factor >= 1.0,
            "hello_backoff_factor must be >= 1",
        )
        require(
            self.hello_backoff_max_s >= self.hello_interval_s,
            "hello_backoff_max_s must be >= hello_interval_s",
        )
        require(
            self.lsa_max_age_s > self.lsa_refresh_interval_s,
            "lsa_max_age_s must exceed lsa_refresh_interval_s "
            "(refreshes must land before entries age out)",
        )
        require(
            self.lsa_flood_fanout is None or self.lsa_flood_fanout >= 2,
            "lsa_flood_fanout must be None (flood all) or >= 2",
        )


@dataclass
class _LinkMonitor:
    """Probe bookkeeping for one outgoing link."""

    next_sequence: int = 0
    outstanding: dict[int, float] = field(default_factory=dict)  # seq -> sent at
    outcomes: deque = field(default_factory=deque)  # recent (seq, acked) pairs
    latency_estimate_ms: float | None = None
    advertised_loss: float = 0.0
    advertised_latency_ms: float | None = None
    consecutive_timeouts: int = 0
    declared_dead: bool = False
    interval_s: float = 0.0  # current probe interval (grows while dead)


class OverlayNode:
    """One overlay daemon."""

    def __init__(
        self,
        node_id: NodeId,
        topology: Topology,
        network: SimNetwork,
        kernel: EventKernel,
        config: NodeConfig = NodeConfig(),
    ) -> None:
        require(topology.has_node(node_id), f"unknown node {node_id!r}")
        self.node_id = node_id
        self.topology = topology
        self.network = network
        self.kernel = kernel
        self.config = config
        self._neighbors = topology.out_neighbors(node_id)
        self._monitors: dict[NodeId, _LinkMonitor] = {
            neighbor: _LinkMonitor(interval_s=config.hello_interval_s)
            for neighbor in self._neighbors
        }
        self._lsa_sequence = 0
        # LSDB: (originator, edge) -> LinkStateUpdate
        self._lsdb: dict[tuple[NodeId, Edge], LinkStateUpdate] = {}
        # Duplicate suppression: flow -> (max sequence seen, seen set)
        self._seen: dict[str, tuple[int, set[int]]] = {}
        self._graph_cache: dict[bytes, DisseminationGraph] = {}
        self._delivery_callbacks: dict[str, Callable[[DataPacket, float], None]] = {}
        # Hop-by-hop recovery bookkeeping: (flow, seq, neighbor) -> attempts
        self._pending_acks: dict[tuple[str, int, NodeId], int] = {}
        self._running = False
        # Restart epoch: hello chains from before a stop/start cycle carry a
        # stale epoch and die, so a restart never doubles the probe rate.
        self._epoch = 0
        # Observation hooks (used by the chaos invariant checker).
        self.delivery_taps: list[
            Callable[["OverlayNode", DataPacket, float], None]
        ] = []
        self.lsa_taps: list[
            Callable[["OverlayNode", LinkStateUpdate, LinkStateUpdate | None], None]
        ] = []
        # Counters (inspected by tests and the harness report).
        self.stats: dict[str, int] = {
            "hellos_sent": 0,
            "lsas_originated": 0,
            "lsas_forwarded": 0,
            "lsas_refreshed": 0,
            "lsas_purged": 0,
            "lsas_aged_out": 0,
            "lsas_fanout_suppressed": 0,
            "data_forwarded": 0,
            "data_delivered": 0,
            "duplicates_suppressed": 0,
            "recoveries": 0,
            "neighbors_declared_dead": 0,
            "neighbors_declared_alive": 0,
            "frames_corrupt_dropped": 0,
            "originates_dropped": 0,
            "rejoins": 0,
        }
        network.register(node_id, self)

    # -- lifecycle ---------------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the daemon is currently up (not crashed)."""
        return self._running

    def start(self) -> None:
        """Begin probing; idempotent.  After ``stop`` this is a warm restart."""
        if self._running:
            return
        self._running = True
        self._epoch += 1
        epoch = self._epoch
        for offset, neighbor in enumerate(self._neighbors):
            # Stagger first hellos so daemons do not phase-lock.
            delay = self.config.hello_interval_s * (offset + 1) / (
                len(self._neighbors) + 1
            )
            self.kernel.schedule(
                delay, lambda n=neighbor: self._hello_tick(n, epoch)
            )

    def stop(self) -> None:
        """Crash the daemon: stop probing and ignore everything received.

        Models a site failure at the process level (as opposed to link
        failures, which the condition timeline models): hellos stop, so
        neighbours declare the links toward this node dead within a few
        probe timeouts, link-state floods route everyone around it, and
        packets forwarded to it vanish.  ``start`` restarts the daemon
        with its protocol state intact (a warm restart); ``rejoin`` is
        the cold variant.
        """
        self._running = False

    def rejoin(self) -> None:
        """Cold restart: come back up with an empty LSDB and fresh monitors.

        The LSA sequence counter and the per-flow delivery journal are
        treated as stable storage and survive: post-restart advertisements
        must supersede pre-crash ones at peers that still hold them, and
        the application must not be handed a packet it already consumed.
        """
        self._running = False
        self._lsdb.clear()
        self._monitors = {
            neighbor: _LinkMonitor(interval_s=self.config.hello_interval_s)
            for neighbor in self._neighbors
        }
        self._pending_acks.clear()
        self.stats["rejoins"] += 1
        self.start()

    def register_delivery(
        self, flow: str, callback: Callable[[DataPacket, float], None]
    ) -> None:
        """Ask to be handed packets of ``flow`` addressed to this node."""
        self._delivery_callbacks[flow] = callback

    def isolated(self) -> bool:
        """True when every neighbour is currently declared dead.

        The LSDB cannot be trusted in this state (nothing new can reach
        us); routing daemons treat it as a stale view and hold their
        last-known-good graph rather than re-route on garbage.
        """
        return bool(self._monitors) and all(
            monitor.declared_dead for monitor in self._monitors.values()
        )

    # -- link monitoring -----------------------------------------------------------

    def _hello_tick(self, neighbor: NodeId, epoch: int) -> None:
        if not self._running or epoch != self._epoch:
            return
        monitor = self._monitors[neighbor]
        sequence = monitor.next_sequence
        monitor.next_sequence += 1
        monitor.outstanding[sequence] = self.kernel.now
        self.network.send(
            self.node_id, neighbor, Hello(self.node_id, sequence, self.kernel.now)
        )
        self.stats["hellos_sent"] += 1
        self._expire_hellos(neighbor)
        if monitor.declared_dead:
            # Bounded exponential backoff while the neighbour stays dead,
            # and keep the full-loss advertisement fresh against aging.
            monitor.interval_s = min(
                monitor.interval_s * self.config.hello_backoff_factor,
                self.config.hello_backoff_max_s,
            )
            self._refresh_own_lsa(neighbor)
        self.kernel.schedule(
            monitor.interval_s, lambda: self._hello_tick(neighbor, epoch)
        )

    def _expire_hellos(self, neighbor: NodeId) -> None:
        """Declare old unacked probes lost and refresh the estimate."""
        monitor = self._monitors[neighbor]
        deadline = self.kernel.now - self.config.hello_timeout_s
        expired = [
            seq for seq, sent in monitor.outstanding.items() if sent <= deadline
        ]
        for sequence in expired:
            del monitor.outstanding[sequence]
            monitor.consecutive_timeouts += 1
            self._record_outcome(neighbor, sequence, acked=False)
        # A dead declaration needs consecutive silence *and* an ack-free
        # window: a merely lossy link drops probe runs now and then, but
        # only a crashed or blackholed neighbour silences a whole window.
        window_ackless = len(monitor.outcomes) >= self.config.hello_window and all(
            not acked for _seq, acked in monitor.outcomes
        )
        if (
            not monitor.declared_dead
            and monitor.consecutive_timeouts >= self.config.liveness_fail_threshold
            and window_ackless
        ):
            self._declare_dead(neighbor)

    def _declare_dead(self, neighbor: NodeId) -> None:
        """Give up on a silent neighbour: advertise full loss, purge, back off."""
        monitor = self._monitors[neighbor]
        monitor.declared_dead = True
        self.stats["neighbors_declared_dead"] += 1
        obs = self.network.obs
        if obs is not None:
            obs.metrics.counter("node.neighbors_declared_dead").inc()
            obs.tracer.instant(
                "monitor.declare_dead", "control", node=self.node_id,
                neighbor=neighbor,
            )
        # Advertise the link as fully lossy regardless of the window
        # estimate -- consecutive silence is stronger evidence than the
        # sliding window, which still remembers pre-outage acks.
        monitor.advertised_loss = 1.0
        monitor.advertised_latency_ms = self.latency_estimate_ms(neighbor)
        self._originate_lsa(neighbor, 1.0, monitor.advertised_latency_ms)
        # Purge LSDB entries originated by the dead neighbour: its claims
        # can no longer be refreshed and would otherwise pin stale state
        # until max-age.
        purged = [key for key in self._lsdb if key[0] == neighbor]
        for key in purged:
            del self._lsdb[key]
        self.stats["lsas_purged"] += len(purged)

    def _declare_alive(self, neighbor: NodeId) -> None:
        """First ack from a dead neighbour: restore cadence, reset the window."""
        monitor = self._monitors[neighbor]
        monitor.declared_dead = False
        monitor.consecutive_timeouts = 0
        monitor.interval_s = self.config.hello_interval_s
        # Drop the outage-saturated window so recovery is advertised from
        # fresh evidence rather than after a full window of new probes.
        monitor.outcomes.clear()
        self.stats["neighbors_declared_alive"] += 1
        obs = self.network.obs
        if obs is not None:
            obs.metrics.counter("node.neighbors_declared_alive").inc()
            obs.tracer.instant(
                "monitor.declare_alive", "control", node=self.node_id,
                neighbor=neighbor,
            )

    def _record_outcome(self, neighbor: NodeId, sequence: int, acked: bool) -> None:
        monitor = self._monitors[neighbor]
        monitor.outcomes.append((sequence, acked))
        while len(monitor.outcomes) > self.config.hello_window:
            monitor.outcomes.popleft()
        self._maybe_advertise(neighbor)

    def loss_estimate(self, neighbor: NodeId) -> float:
        """Current loss estimate for the outgoing link to ``neighbor``.

        A neighbour declared dead estimates at 1.0 regardless of the
        window (silence is attributed to the link until proven otherwise).
        """
        monitor = self._monitors[neighbor]
        if monitor.declared_dead:
            return 1.0
        if not monitor.outcomes:
            return 0.0
        lost = sum(1 for _seq, acked in monitor.outcomes if not acked)
        return lost / len(monitor.outcomes)

    def latency_estimate_ms(self, neighbor: NodeId) -> float:
        """Current one-way latency estimate for the outgoing link."""
        monitor = self._monitors[neighbor]
        if monitor.latency_estimate_ms is None:
            return self.topology.latency(self.node_id, neighbor)
        return monitor.latency_estimate_ms

    def _originate_lsa(self, neighbor: NodeId, loss: float, latency_ms: float) -> None:
        self._lsa_sequence += 1
        update = LinkStateUpdate(
            originator=self.node_id,
            sequence=self._lsa_sequence,
            edge=(self.node_id, neighbor),
            loss_rate=loss,
            latency_ms=latency_ms,
            originated_at_s=self.kernel.now,
        )
        self.stats["lsas_originated"] += 1
        self._accept_lsa(update, flood_from=None)

    def _refresh_own_lsa(self, neighbor: NodeId) -> None:
        """Re-originate our own non-clean advertisement before it ages out."""
        monitor = self._monitors[neighbor]
        key = (self.node_id, (self.node_id, neighbor))
        own = self._lsdb.get(key)
        if own is None:
            return
        base = self.topology.latency(self.node_id, neighbor)
        non_clean = own.loss_rate > 0.0 or own.latency_ms - base >= 1.0
        if not non_clean:
            return
        if self.kernel.now - own.originated_at_s < self.config.lsa_refresh_interval_s:
            return
        self.stats["lsas_refreshed"] += 1
        self._originate_lsa(
            neighbor,
            monitor.advertised_loss,
            monitor.advertised_latency_ms
            if monitor.advertised_latency_ms is not None
            else base,
        )

    def _maybe_advertise(self, neighbor: NodeId) -> None:
        """Originate an LSA when the estimate moved materially."""
        monitor = self._monitors[neighbor]
        if monitor.declared_dead:
            return  # the full-loss declaration stands until proven alive
        loss = self.loss_estimate(neighbor)
        latency = self.latency_estimate_ms(neighbor)
        previous_latency = (
            monitor.advertised_latency_ms
            if monitor.advertised_latency_ms is not None
            else self.topology.latency(self.node_id, neighbor)
        )
        loss_moved = abs(loss - monitor.advertised_loss) >= self.config.loss_report_delta
        latency_moved = (
            abs(latency - previous_latency) >= self.config.latency_report_delta_ms
        )
        if not loss_moved and not latency_moved:
            self._refresh_own_lsa(neighbor)
            return
        monitor.advertised_loss = loss
        monitor.advertised_latency_ms = latency
        self._originate_lsa(neighbor, loss, latency)

    # -- link-state flooding ---------------------------------------------------------

    def _accept_lsa(self, update: LinkStateUpdate, flood_from: NodeId | None) -> None:
        key = (update.originator, update.edge)
        existing = self._lsdb.get(key)
        if existing is not None and existing.sequence >= update.sequence:
            return  # old news
        self._lsdb[key] = update
        obs = self.network.obs
        if obs is not None:
            name = "lsa.originate" if flood_from is None else "lsa.accept"
            obs.metrics.counter(f"node.{name}").inc()
            obs.tracer.instant(
                name,
                "control",
                node=self.node_id,
                originator=update.originator,
                edge=f"{update.edge[0]}->{update.edge[1]}",
                seq=update.sequence,
                loss=update.loss_rate,
            )
        for tap in self.lsa_taps:
            tap(self, update, existing)
        targets = [
            neighbor for neighbor in self._neighbors if neighbor != flood_from
        ]
        fanout = self.config.lsa_flood_fanout
        if flood_from is not None and fanout is not None and len(targets) > fanout:
            # Deterministic per-(update, node) subset: rank neighbours by a
            # keyed hash so repeated floods of one update pick the same
            # set, while different updates spread over different subsets.
            targets.sort(
                key=lambda neighbor: (
                    hash_uniform(
                        "lsa-fanout",
                        self.node_id,
                        neighbor,
                        update.originator,
                        update.edge,
                        update.sequence,
                    ),
                    neighbor,
                )
            )
            self.stats["lsas_fanout_suppressed"] += len(targets) - fanout
            targets = targets[:fanout]
        for neighbor in targets:
            self.network.send(self.node_id, neighbor, update)
            if flood_from is not None:
                self.stats["lsas_forwarded"] += 1

    def _age_lsdb(self) -> None:
        """Drop LSDB entries whose originator stopped refreshing them.

        Originators re-advertise live non-clean links every refresh
        interval, so an entry older than max-age belongs to a crashed or
        partitioned originator (or describes a link that went clean and
        stopped mattering); believing it forever would wedge routing on a
        stale view.
        """
        horizon = self.kernel.now - self.config.lsa_max_age_s
        stale = [
            key
            for key, update in self._lsdb.items()
            if update.originated_at_s < horizon
        ]
        for key in stale:
            del self._lsdb[key]
        self.stats["lsas_aged_out"] += len(stale)

    def observed_view(self) -> dict[Edge, LinkState]:
        """The degraded-edge view this daemon currently believes.

        This is what the routing daemon feeds to its policy: for every
        LSDB entry that deviates from clean, the loss rate and the latency
        inflation over the topology's base latency.  Aged-out entries are
        dropped first.
        """
        self._age_lsdb()
        view: dict[Edge, LinkState] = {}
        for (_originator, edge), update in self._lsdb.items():
            base = self.topology.latency(*edge)
            extra = max(0.0, update.latency_ms - base)
            if extra < 1.0:
                extra = 0.0  # measurement jitter, not congestion
            if update.loss_rate <= 0.0 and extra <= 0.0:
                continue
            view[edge] = LinkState(
                loss_rate=min(1.0, max(0.0, update.loss_rate)),
                extra_latency_ms=extra,
            )
        return view

    # -- data plane ---------------------------------------------------------------------

    def originate(self, packet: DataPacket) -> None:
        """Inject a locally generated packet (called by the sending app)."""
        require(packet.source == self.node_id, "originate() at the wrong node")
        obs = self.network.obs
        if not self._running:
            # A crashed process cannot put packets on the wire; the
            # sending app's counter still records them as sent-and-lost.
            self.stats["originates_dropped"] += 1
            if obs is not None:
                obs.metrics.counter("node.originates_dropped").inc()
            return
        if obs is not None:
            # Root of the packet's span hierarchy: every hop on every
            # link links back to this journey span.
            obs.tracer.open(
                ("pkt", packet.flow, packet.sequence),
                "packet.journey",
                "data",
                flow=packet.flow,
                seq=packet.sequence,
                node=self.node_id,
            )
        self._handle_data(packet, from_node=None)

    def _first_sighting(self, flow: str, sequence: int) -> bool:
        max_seen, seen = self._seen.get(flow, (-1, set()))
        if sequence in seen:
            return False
        seen.add(sequence)
        max_seen = max(max_seen, sequence)
        # Bound memory: forget sequences far behind the newest.
        if len(seen) > self.config.dedup_window:
            horizon = max_seen - self.config.dedup_window
            seen = {s for s in seen if s > horizon}
        self._seen[flow] = (max_seen, seen)
        return True

    def _decode(self, encoding: bytes) -> DisseminationGraph:
        graph = self._graph_cache.get(encoding)
        if graph is None:
            graph = decode_graph(self.topology, encoding)
            self._graph_cache[encoding] = graph
        return graph

    def _handle_data(self, packet: DataPacket, from_node: NodeId | None) -> None:
        if from_node is not None and self.config.enable_recovery:
            # Ack every received copy, duplicate or not -- the sender's
            # retransmission may be what finally got through.
            self.network.send(
                self.node_id, from_node, LinkAck(self.node_id, packet.flow, packet.sequence)
            )
        obs = self.network.obs
        if not self._first_sighting(packet.flow, packet.sequence):
            self.stats["duplicates_suppressed"] += 1
            if obs is not None:
                obs.metrics.counter("node.duplicates_suppressed").inc()
            return
        if packet.destination == self.node_id:
            self.stats["data_delivered"] += 1
            if obs is not None:
                latency_ms = (self.kernel.now - packet.sent_at_s) * 1000.0
                obs.metrics.counter("node.delivered").inc()
                obs.metrics.histogram(f"flow.latency_ms.{packet.flow}").observe(
                    latency_ms
                )
                obs.tracer.close(
                    ("pkt", packet.flow, packet.sequence),
                    delivered_at=self.node_id,
                    latency_ms=latency_ms,
                )
            for tap in self.delivery_taps:
                tap(self, packet, self.kernel.now)
            callback = self._delivery_callbacks.get(packet.flow)
            if callback is not None:
                callback(packet, self.kernel.now)
            # The destination still forwards if the graph says so (it may
            # relay toward other branches), though pruned graphs never do.
        graph = self._decode(packet.graph_encoding)
        for neighbor in graph.out_neighbors(self.node_id):
            self._transmit_copy(packet, neighbor, attempt=0)

    def _transmit_copy(self, packet: DataPacket, neighbor: NodeId, attempt: int) -> None:
        self.network.send(self.node_id, neighbor, packet)
        self.stats["data_forwarded"] += 1
        if not self.config.enable_recovery:
            return
        key = (packet.flow, packet.sequence, neighbor)
        self._pending_acks[key] = attempt
        self.kernel.schedule(
            self.config.recovery_timeout_s,
            lambda: self._maybe_retransmit(packet, neighbor, attempt),
        )

    def _maybe_retransmit(
        self, packet: DataPacket, neighbor: NodeId, attempt: int
    ) -> None:
        if not self._running:
            return  # a crashed daemon retransmits nothing
        key = (packet.flow, packet.sequence, neighbor)
        pending = self._pending_acks.get(key)
        if pending is None or pending != attempt:
            return  # acked, or a newer attempt owns the timer
        if attempt + 1 > self.config.max_recovery_attempts:
            del self._pending_acks[key]
            return
        self.stats["recoveries"] += 1
        self._transmit_copy(packet, neighbor, attempt + 1)

    # -- message dispatch ------------------------------------------------------------------

    def receive(self, from_node: NodeId, message: object) -> None:
        """Entry point for every message the network delivers to us."""
        if not self._running:
            return  # crashed daemon: everything sent to us is lost
        if isinstance(message, Frame):
            # Checksummed transmission (chaos runs): verify before
            # dispatch and drop damaged frames, exactly like a link-layer
            # checksum discard.
            if not frame_intact(message):
                self.stats["frames_corrupt_dropped"] += 1
                return
            message = message.payload
        if isinstance(message, Hello):
            self.network.send(
                self.node_id,
                from_node,
                HelloAck(self.node_id, message.sequence, message.sent_at_s),
            )
        elif isinstance(message, HelloAck):
            self._handle_hello_ack(from_node, message)
        elif isinstance(message, LinkStateUpdate):
            self._accept_lsa(message, flood_from=from_node)
        elif isinstance(message, DataPacket):
            self._handle_data(message, from_node=from_node)
        elif isinstance(message, LinkAck):
            self._pending_acks.pop(
                (message.flow, message.sequence, from_node), None
            )
        else:  # pragma: no cover - no other message types exist
            raise TypeError(f"unknown message type {type(message).__name__}")

    def _handle_hello_ack(self, from_node: NodeId, ack: HelloAck) -> None:
        monitor = self._monitors.get(from_node)
        if monitor is None or ack.hello_sequence not in monitor.outstanding:
            return  # late ack for an already-expired probe
        del monitor.outstanding[ack.hello_sequence]
        if monitor.declared_dead:
            self._declare_alive(from_node)
        monitor.consecutive_timeouts = 0
        rtt_s = self.kernel.now - ack.hello_sent_at_s
        one_way_ms = rtt_s * 1000.0 / 2.0
        if monitor.latency_estimate_ms is None:
            monitor.latency_estimate_ms = one_way_ms
        else:
            w = self.config.latency_smoothing
            monitor.latency_estimate_ms = (
                w * one_way_ms + (1 - w) * monitor.latency_estimate_ms
            )
        self._record_outcome(from_node, ack.hello_sequence, acked=True)
